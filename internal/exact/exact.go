// Package exact computes provably optimal linear-arrangement densities for
// small instances by dynamic programming over cell subsets.
//
// The key structural fact: the number of nets crossing the gap after a
// prefix of the arrangement depends only on the *set* of cells placed, not
// their order. Writing cut(S) for the number of nets with a pin both inside
// and outside S, the optimal density is
//
//	f(S) = max(cut(S), min_{c ∈ S} f(S \ {c})),   f(∅) = 0,
//
// over the 2^n subsets — the same recurrence family used for pathwidth.
// With the paper's 15-element instances this is ~32 768 states and exact
// optima come back in milliseconds, which lets EXPERIMENTS.md report true
// optimality gaps for every Monte Carlo method (something the 1985 authors
// could not do).
//
// The package is exponential by nature and refuses instances beyond
// MaxCells.
package exact

import (
	"fmt"
	"math/bits"

	"mcopt/internal/netlist"
)

// MaxCells bounds the DP (2^22 ints ≈ 16 MiB of table).
const MaxCells = 22

// MinDensity returns the optimal (minimum achievable) density of the
// netlist over all n! linear arrangements. It errors on instances with
// more than MaxCells cells.
func MinDensity(nl *netlist.Netlist) (int, error) {
	f, err := solve(nl)
	if err != nil {
		return 0, err
	}
	return int(f[len(f)-1]), nil
}

// MinTotalSpan returns the optimal total wirelength (sum of net spans, the
// [KANG83] objective) over all linear arrangements. Because the total span
// equals the sum of the frontier cuts over all prefixes, the same subset DP
// applies with + in place of max:
//
//	f(S) = cut(S) + min_{c ∈ S} f(S \ {c}),   f(∅) = 0.
func MinTotalSpan(nl *netlist.Netlist) (int, error) {
	n := nl.NumCells()
	if n > MaxCells {
		return 0, fmt.Errorf("exact: %d cells exceeds MaxCells = %d", n, MaxCells)
	}
	cut, err := frontierCuts(nl)
	if err != nil {
		return 0, err
	}
	full := uint32(1)<<n - 1
	f := make([]int32, full+1)
	for s := uint32(1); s <= full; s++ {
		best := int32(1) << 30
		rem := s
		for rem != 0 {
			c := bits.TrailingZeros32(rem)
			rem &^= uint32(1) << c
			if v := f[s&^(uint32(1)<<c)]; v < best {
				best = v
			}
		}
		f[s] = cut[s] + best
	}
	return int(f[full]), nil
}

// OptimalOrder returns an arrangement achieving MinDensity, reconstructed
// from the DP table (order[pos] = cell).
func OptimalOrder(nl *netlist.Netlist) ([]int, error) {
	f, err := solve(nl)
	if err != nil {
		return nil, err
	}
	n := nl.NumCells()
	order := make([]int, n)
	s := uint32(1)<<n - 1
	// Walk backwards: at each step remove a cell c with f(S) ==
	// max(cut(S\c) ... ) consistent, i.e. pick c minimizing f(S\{c}).
	for pos := n - 1; pos >= 0; pos-- {
		bestC, bestF := -1, int32(0)
		for c := 0; c < n; c++ {
			bit := uint32(1) << c
			if s&bit == 0 {
				continue
			}
			if v := f[s&^bit]; bestC < 0 || v < bestF {
				bestC, bestF = c, v
			}
		}
		order[pos] = bestC
		s &^= uint32(1) << bestC
	}
	return order, nil
}

// frontierCuts returns cut[S] = the number of nets crossing the S / V∖S
// frontier (a net crosses iff S∩m ≠ ∅ and m∖S ≠ ∅), for every subset.
// Built incrementally: process subsets in increasing order, take the lowest
// set bit as the "last added" cell, and adjust the predecessor's value over
// that cell's incident nets only.
func frontierCuts(nl *netlist.Netlist) ([]int32, error) {
	n := nl.NumCells()
	if n > MaxCells {
		return nil, fmt.Errorf("exact: %d cells exceeds MaxCells = %d", n, MaxCells)
	}
	masks := netMasks(nl)
	full := uint32(1)<<n - 1
	cut := make([]int32, full+1)
	pinsIn := func(m, s uint32) int { return bits.OnesCount32(m & s) }
	for s := uint32(1); s <= full; s++ {
		c := bits.TrailingZeros32(s)
		prev := s &^ (uint32(1) << c)
		v := cut[prev]
		for _, netID := range nl.CellNets(c) {
			m := masks[netID]
			in := pinsIn(m, s)
			total := bits.OnesCount32(m)
			wasCrossing := pinsIn(m, prev) > 0 && pinsIn(m, prev) < total
			isCrossing := in > 0 && in < total
			switch {
			case isCrossing && !wasCrossing:
				v++
			case !isCrossing && wasCrossing:
				v--
			}
		}
		cut[s] = v
	}
	return cut, nil
}

// solve fills the DP table f[S] = optimal max-gap-cut over arrangements of
// exactly the cells in S (as a prefix of the final arrangement).
func solve(nl *netlist.Netlist) ([]int32, error) {
	cut, err := frontierCuts(nl)
	if err != nil {
		return nil, err
	}
	n := nl.NumCells()
	full := uint32(1)<<n - 1
	f := make([]int32, full+1)
	for s := uint32(1); s <= full; s++ {
		best := int32(1) << 30
		rem := s
		for rem != 0 {
			c := bits.TrailingZeros32(rem)
			rem &^= uint32(1) << c
			if v := f[s&^(uint32(1)<<c)]; v < best {
				best = v
			}
		}
		f[s] = max(cut[s], best)
	}
	return f, nil
}

// netMasks returns each net's pin set as a bitmask.
func netMasks(nl *netlist.Netlist) []uint32 {
	masks := make([]uint32, nl.NumNets())
	for i := range masks {
		var m uint32
		for _, c := range nl.Net(i) {
			m |= uint32(1) << c
		}
		masks[i] = m
	}
	return masks
}
