package tuner

import (
	"runtime"
	"testing"

	"mcopt/internal/core"
	"mcopt/internal/experiment"
	"mcopt/internal/gfunc"
	"mcopt/internal/linarr"
	"mcopt/internal/sched"
)

func golaStart(seed uint64, instances int) (Start, int) {
	p := experiment.GOLAParams()
	p.Instances = instances
	suite := experiment.NewSuite(p, seed)
	return func(inst int) core.Solution {
		return linarr.NewSolution(suite.Start(inst), linarr.PairwiseInterchange)
	}, instances
}

func TestTuneClassGrid(t *testing.T) {
	start, n := golaStart(1, 4)
	b, _ := gfunc.ByID(1) // Metropolis
	cfg := Config{
		Multipliers: []float64{0.25, 1, 4},
		Budget:      400,
		Instances:   n,
		Seed:        1,
	}
	res, _ := TuneClass(b, experiment.GOLAScale(), start, cfg)
	if res.ClassID != 1 || res.Name != "Metropolis" {
		t.Fatalf("identity wrong: %+v", res)
	}
	if len(res.Scores) != 3 {
		t.Fatalf("scores = %d, want 3", len(res.Scores))
	}
	found := false
	for _, s := range res.Scores {
		if s.Multiplier == res.Best.Multiplier && s.Reduction == res.Best.Reduction {
			found = true
		}
		if s.Reduction < 0 {
			t.Fatalf("negative reduction at multiplier %g", s.Multiplier)
		}
		if s.Reduction > res.Best.Reduction {
			t.Fatalf("best (%+v) not maximal: %+v", res.Best, s)
		}
	}
	if !found {
		t.Fatal("best score not among grid points")
	}
	if len(res.BestYs) != 1 {
		t.Fatalf("BestYs = %v, want one level", res.BestYs)
	}
	base := b.DefaultYs(experiment.GOLAScale())
	if res.BestYs[0] != base[0]*res.Best.Multiplier {
		t.Fatalf("BestYs %v inconsistent with multiplier %g over base %v",
			res.BestYs, res.Best.Multiplier, base)
	}
}

func TestTuneClassNoYsIsSinglePoint(t *testing.T) {
	start, n := golaStart(2, 3)
	b, _ := gfunc.ByID(3) // g = 1
	res, _ := TuneClass(b, experiment.GOLAScale(), start, Config{Budget: 300, Instances: n, Seed: 1})
	if len(res.Scores) != 1 || res.Best.Multiplier != 1 {
		t.Fatalf("g=1 tuning should be a single unit point: %+v", res)
	}
}

func TestTuneClassDeterministic(t *testing.T) {
	start, n := golaStart(3, 3)
	b, _ := gfunc.ByID(15) // cubic diff
	cfg := Config{Multipliers: []float64{0.5, 1, 2}, Budget: 300, Instances: n, Seed: 7}
	a, _ := TuneClass(b, experiment.GOLAScale(), start, cfg)
	c, _ := TuneClass(b, experiment.GOLAScale(), start, cfg)
	for i := range a.Scores {
		if a.Scores[i] != c.Scores[i] {
			t.Fatalf("tuning not deterministic at grid point %d: %+v vs %+v", i, a.Scores[i], c.Scores[i])
		}
	}
}

func TestTuneClassSequentialMatchesParallel(t *testing.T) {
	start, n := golaStart(4, 3)
	b, _ := gfunc.ByID(2)
	cfg := Config{Multipliers: []float64{1, 2}, Budget: 300, Instances: n, Seed: 7}
	par, _ := TuneClass(b, experiment.GOLAScale(), start, cfg)
	cfg.Sequential = true
	seq, _ := TuneClass(b, experiment.GOLAScale(), start, cfg)
	for i := range par.Scores {
		if par.Scores[i] != seq.Scores[i] {
			t.Fatal("sequential and parallel tuning diverged")
		}
	}
}

func TestTuneClassByteIdenticalAcrossWorkerCounts(t *testing.T) {
	// Full ClassResult equality — scores, winner, and tuned ys — between a
	// one-worker and an all-cores schedule. Run under -race in CI, this is
	// also the tuner's data-race probe.
	start, n := golaStart(11, 3)
	b, _ := gfunc.ByID(3)
	cfg := Config{Multipliers: []float64{0.5, 1, 2}, Budget: 400, Instances: n, Seed: 11}
	cfg.Exec = sched.Options{Workers: 1}
	seq, err := TuneClass(b, experiment.GOLAScale(), start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exec = sched.Options{Workers: runtime.GOMAXPROCS(0)}
	par, err := TuneClass(b, experiment.GOLAScale(), start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Scores) != len(par.Scores) {
		t.Fatalf("score counts differ: %d vs %d", len(seq.Scores), len(par.Scores))
	}
	for i := range seq.Scores {
		if seq.Scores[i] != par.Scores[i] {
			t.Fatalf("grid point %d diverged: %+v vs %+v", i, seq.Scores[i], par.Scores[i])
		}
	}
	if seq.Best.Multiplier != par.Best.Multiplier || seq.Best.Reduction != par.Best.Reduction {
		t.Fatalf("winners diverged: %+v vs %+v", seq.Best, par.Best)
	}
	for i := range seq.BestYs {
		if seq.BestYs[i] != par.BestYs[i] {
			t.Fatalf("tuned y[%d] diverged: %g vs %g", i, seq.BestYs[i], par.BestYs[i])
		}
	}
}

func TestTuneAllCoversAllClasses(t *testing.T) {
	start, n := golaStart(5, 2)
	results, _ := TuneAll(experiment.GOLAScale(), start, Config{
		Multipliers: []float64{1},
		Budget:      150,
		Instances:   n,
		Seed:        1,
	})
	if len(results) != 20 {
		t.Fatalf("TuneAll returned %d results, want 20", len(results))
	}
	for i, r := range results {
		if r.ClassID != i+1 {
			t.Fatalf("result %d has class id %d", i, r.ClassID)
		}
	}
}

func TestTieBreakPrefersMultiplierNearOne(t *testing.T) {
	if !closerToOne(1, 4) || closerToOne(4, 1) {
		t.Fatal("closerToOne(1,4) ordering wrong")
	}
	if !closerToOne(0.5, 4) {
		t.Fatal("closerToOne(0.5,4) should hold (2x vs 4x from unity)")
	}
	if !closerToOne(0.5, 2) {
		t.Fatal("equal distance ties should take the smaller multiplier")
	}
}

func TestTuneClassPanicsWithoutInstances(t *testing.T) {
	b, _ := gfunc.ByID(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero instances")
		}
	}()
	TuneClass(b, experiment.GOLAScale(), nil, Config{Budget: 10})
}
