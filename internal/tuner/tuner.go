// Package tuner reproduces the paper's §4.2.1 temperature-determination
// procedure: "we attempt to find the best Yᵢs for each g using a randomly
// generated set of instances and the strategy of Figure 1."
//
// The search space is multiplicative scalings of each class's default
// schedule. For every candidate multiplier the tuner runs the class over the
// whole instance suite under a fixed budget and totals the density
// reduction; the best multiplier wins.
package tuner

import (
	"context"
	"fmt"

	"mcopt/internal/checkpoint"
	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/rng"
	"mcopt/internal/sched"
)

// Start produces a fresh copy of instance inst's starting solution. Repeated
// calls with the same inst must return equivalent, independent states, so
// that every candidate schedule starts from the same arrangement.
type Start func(inst int) core.Solution

// Config controls the grid search.
type Config struct {
	// Multipliers are the candidate scalings of the default schedule. Nil
	// selects DefaultMultipliers.
	Multipliers []float64
	// Warm supplies per-class probe grids mined from the run archive (see
	// WarmStart): a class with a prior searches ProbeMultipliers around it
	// instead of the full grid. Classes without a prior fall back to
	// Multipliers.
	Warm Priors
	// Budget is the move allowance per instance per candidate (the paper
	// limited each temperature to ⌈5/k⌉ seconds; the default engine split
	// reproduces the per-level division).
	Budget int64
	// Instances is the suite size.
	Instances int
	// Seed derives the per-cell random streams.
	Seed uint64
	// Plateau is the Figure-1 zero-delta policy to tune under.
	Plateau core.PlateauPolicy
	// Sequential forces a single worker (same as Exec.Workers = 1).
	Sequential bool
	// Exec carries the execution-layer knobs (worker count, cancellation).
	// Results are byte-identical for every worker count.
	Exec sched.Options
}

// exec resolves the effective scheduler options.
func (c Config) exec() sched.Options {
	o := c.Exec
	if c.Sequential {
		o.Workers = 1
	}
	return o
}

// DefaultMultipliers spans ±2× around each class's analytically derived
// default schedule in roughly √2 steps.
//
// The range is deliberately bounded. With an unbounded grid every weak class
// tunes to a schedule so cold that it degenerates into pure descent — at
// which point all twenty classes collapse onto near-identical local-search
// behavior and the comparison the paper runs becomes vacuous. The paper's
// own tuned value classes clearly retained substantial uphill acceptance
// (they trail the leaders by ~25% in Table 4.1), so the faithful search
// space is "the best genuinely Monte Carlo setting of each g", which this
// grid expresses. Callers can pass Config.Multipliers to explore wider
// ranges; cmd/olatune -wide does exactly that, and EXPERIMENTS.md records
// both grids.
var DefaultMultipliers = []float64{0.5, 0.7, 1, 1.4, 2}

// Score is one grid point's outcome.
type Score struct {
	Multiplier float64
	// Reduction is the suite-total cost reduction achieved.
	Reduction float64
}

// ClassResult is the grid search outcome for one g class.
type ClassResult struct {
	ClassID int
	Name    string
	// Best is the winning grid point (ties go to the multiplier closest
	// to 1, then to the smaller one, making results deterministic).
	Best Score
	// Scores holds every grid point in Multipliers order.
	Scores []Score
	// BestYs is the winning schedule itself.
	BestYs []float64
}

// TuneClass grid-searches schedule scalings for one builder. Builders
// without tunable temperatures (NeedsY == false) return a single unit
// score, mirroring the paper's observation that g = 1 needs no tuning.
//
// The whole (multiplier, instance) grid runs as one batch on the shared
// scheduler. On cancellation the partial result is still returned — skipped
// cells contribute zero reduction — along with the interruption error, so
// callers should not trust Best when err is non-nil.
func TuneClass(b gfunc.Builder, scale gfunc.Scale, start Start, cfg Config) (ClassResult, error) {
	if cfg.Instances <= 0 {
		panic(fmt.Sprintf("tuner: config has %d instances", cfg.Instances))
	}
	mults := cfg.Multipliers
	if mults == nil {
		mults = DefaultMultipliers
	}
	if p, ok := cfg.Warm[b.Name]; ok {
		mults = ProbeMultipliers(p.Multiplier)
	}
	if !b.NeedsY {
		mults = []float64{1}
	}

	// One g per multiplier, shared across its instance cells: every gfunc
	// class is an immutable value after construction, and custom core.G
	// implementations passed through a Builder must be safe for concurrent
	// use. The RNG stream label likewise depends only on the multiplier.
	gs := make([]core.G, len(mults))
	labels := make([]string, len(mults))
	var base []float64
	if b.NeedsY {
		base = b.DefaultYs(scale)
	}
	for mi, mult := range mults {
		if b.NeedsY {
			ys := make([]float64, len(base))
			for i, y := range base {
				ys[i] = y * mult
			}
			gs[mi] = b.Build(ys)
		} else {
			gs[mi] = b.Build(nil)
		}
		labels[mi] = fmt.Sprintf("tune/%s/%g", b.Name, mult)
	}

	grid := sched.Grid2{A: len(mults), B: cfg.Instances}
	reds := make([]float64, grid.N())
	exec := cfg.exec()
	// The journal is keyed per class: TuneAll resumes mid-sweep with the
	// finished classes restored wholesale and the interrupted one restored
	// cell by cell.
	jr, err := exec.Checkpoint.Journal("tune-"+b.Name, checkpoint.Fingerprint(
		"tuner.TuneClass", b.Name, fmt.Sprint(b.ID), fmt.Sprint(mults),
		fmt.Sprint(cfg.Budget), fmt.Sprint(cfg.Instances), fmt.Sprint(cfg.Seed), fmt.Sprint(int(cfg.Plateau))))
	if err != nil {
		return ClassResult{ClassID: b.ID, Name: b.Name}, err
	}
	defer jr.Close()
	if err := jr.RestoreFloat64(grid.N(), func(slot int, v float64) { reds[slot] = v }); err != nil {
		return ClassResult{ClassID: b.ID, Name: b.Name}, err
	}
	if jr != nil {
		exec.Skip = jr.Done
	}
	rep := sched.Run(grid.N(), exec, func(ctx context.Context, j int) error {
		mi, inst := grid.Split(j)
		r := rng.Derive(labels[mi], cfg.Seed, uint64(inst))
		res := core.Figure1{G: gs[mi], Plateau: cfg.Plateau}.
			Run(start(inst), core.NewBudget(cfg.Budget).WithContext(ctx), r)
		reds[j] = res.Reduction()
		return jr.AppendFloat64(ctx, j, reds[j])
	})

	res := ClassResult{ClassID: b.ID, Name: b.Name, Scores: make([]Score, len(mults))}
	for mi, mult := range mults {
		total := 0.0
		for inst := 0; inst < cfg.Instances; inst++ {
			total += reds[grid.Index(mi, inst)]
		}
		res.Scores[mi] = Score{Multiplier: mult, Reduction: total}
	}
	best := res.Scores[0]
	for _, s := range res.Scores[1:] {
		if s.Reduction > best.Reduction ||
			(s.Reduction == best.Reduction && closerToOne(s.Multiplier, best.Multiplier)) {
			best = s
		}
	}
	res.Best = best
	if b.NeedsY {
		res.BestYs = make([]float64, len(base))
		for i, y := range base {
			res.BestYs[i] = y * best.Multiplier
		}
	}
	return res, rep.Err()
}

// TuneAll tunes every paper class against the same suite and budget. On
// error (cancellation mid-grid) it returns the classes finished so far.
func TuneAll(scale gfunc.Scale, start Start, cfg Config) ([]ClassResult, error) {
	out := make([]ClassResult, 0, 20)
	for _, b := range gfunc.Classes() {
		res, err := TuneClass(b, scale, start, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

func closerToOne(a, b float64) bool {
	da, db := a, b
	if da < 1 {
		da = 1 / da
	}
	if db < 1 {
		db = 1 / db
	}
	if da != db {
		return da < db
	}
	return a < b
}
