// Package tuner reproduces the paper's §4.2.1 temperature-determination
// procedure: "we attempt to find the best Yᵢs for each g using a randomly
// generated set of instances and the strategy of Figure 1."
//
// The search space is multiplicative scalings of each class's default
// schedule. For every candidate multiplier the tuner runs the class over the
// whole instance suite under a fixed budget and totals the density
// reduction; the best multiplier wins.
package tuner

import (
	"fmt"
	"runtime"
	"sync"

	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/rng"
)

// Start produces a fresh copy of instance inst's starting solution. Repeated
// calls with the same inst must return equivalent, independent states, so
// that every candidate schedule starts from the same arrangement.
type Start func(inst int) core.Solution

// Config controls the grid search.
type Config struct {
	// Multipliers are the candidate scalings of the default schedule. Nil
	// selects DefaultMultipliers.
	Multipliers []float64
	// Budget is the move allowance per instance per candidate (the paper
	// limited each temperature to ⌈5/k⌉ seconds; the default engine split
	// reproduces the per-level division).
	Budget int64
	// Instances is the suite size.
	Instances int
	// Seed derives the per-cell random streams.
	Seed uint64
	// Plateau is the Figure-1 zero-delta policy to tune under.
	Plateau core.PlateauPolicy
	// Sequential disables the worker pool.
	Sequential bool
}

// DefaultMultipliers spans ±2× around each class's analytically derived
// default schedule in roughly √2 steps.
//
// The range is deliberately bounded. With an unbounded grid every weak class
// tunes to a schedule so cold that it degenerates into pure descent — at
// which point all twenty classes collapse onto near-identical local-search
// behavior and the comparison the paper runs becomes vacuous. The paper's
// own tuned value classes clearly retained substantial uphill acceptance
// (they trail the leaders by ~25% in Table 4.1), so the faithful search
// space is "the best genuinely Monte Carlo setting of each g", which this
// grid expresses. Callers can pass Config.Multipliers to explore wider
// ranges; cmd/olatune -wide does exactly that, and EXPERIMENTS.md records
// both grids.
var DefaultMultipliers = []float64{0.5, 0.7, 1, 1.4, 2}

// Score is one grid point's outcome.
type Score struct {
	Multiplier float64
	// Reduction is the suite-total cost reduction achieved.
	Reduction float64
}

// ClassResult is the grid search outcome for one g class.
type ClassResult struct {
	ClassID int
	Name    string
	// Best is the winning grid point (ties go to the multiplier closest
	// to 1, then to the smaller one, making results deterministic).
	Best Score
	// Scores holds every grid point in Multipliers order.
	Scores []Score
	// BestYs is the winning schedule itself.
	BestYs []float64
}

// TuneClass grid-searches schedule scalings for one builder. Builders
// without tunable temperatures (NeedsY == false) return a single unit
// score, mirroring the paper's observation that g = 1 needs no tuning.
func TuneClass(b gfunc.Builder, scale gfunc.Scale, start Start, cfg Config) ClassResult {
	if cfg.Instances <= 0 {
		panic(fmt.Sprintf("tuner: config has %d instances", cfg.Instances))
	}
	mults := cfg.Multipliers
	if mults == nil {
		mults = DefaultMultipliers
	}
	if !b.NeedsY {
		g := b.Build(nil)
		red := totalReduction(g, b, 1, start, cfg)
		return ClassResult{
			ClassID: b.ID, Name: b.Name,
			Best:   Score{Multiplier: 1, Reduction: red},
			Scores: []Score{{Multiplier: 1, Reduction: red}},
		}
	}

	base := b.DefaultYs(scale)
	res := ClassResult{ClassID: b.ID, Name: b.Name, Scores: make([]Score, len(mults))}
	for mi, mult := range mults {
		ys := make([]float64, len(base))
		for i, y := range base {
			ys[i] = y * mult
		}
		red := totalReduction(b.Build(ys), b, mult, start, cfg)
		res.Scores[mi] = Score{Multiplier: mult, Reduction: red}
	}
	best := res.Scores[0]
	for _, s := range res.Scores[1:] {
		if s.Reduction > best.Reduction ||
			(s.Reduction == best.Reduction && closerToOne(s.Multiplier, best.Multiplier)) {
			best = s
		}
	}
	res.Best = best
	res.BestYs = make([]float64, len(base))
	for i, y := range base {
		res.BestYs[i] = y * best.Multiplier
	}
	return res
}

// TuneAll tunes every paper class against the same suite and budget.
func TuneAll(scale gfunc.Scale, start Start, cfg Config) []ClassResult {
	out := make([]ClassResult, 0, 20)
	for _, b := range gfunc.Classes() {
		out = append(out, TuneClass(b, scale, start, cfg))
	}
	return out
}

// totalReduction runs g over the whole suite and totals InitialCost−BestCost.
// The g instance is shared across the worker pool, which is safe because
// every gfunc class is an immutable value after construction; custom core.G
// implementations passed through a Builder must be safe for concurrent use.
func totalReduction(g core.G, b gfunc.Builder, mult float64, start Start, cfg Config) float64 {
	reds := make([]float64, cfg.Instances)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if cfg.Sequential {
		workers = 1
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for inst := range jobs {
				r := rng.Derive(fmt.Sprintf("tune/%s/%g", b.Name, mult), cfg.Seed, uint64(inst))
				res := core.Figure1{G: g, Plateau: cfg.Plateau}.
					Run(start(inst), core.NewBudget(cfg.Budget), r)
				reds[inst] = res.Reduction()
			}
		}()
	}
	for inst := 0; inst < cfg.Instances; inst++ {
		jobs <- inst
	}
	close(jobs)
	wg.Wait()
	total := 0.0
	for _, r := range reds {
		total += r
	}
	return total
}

func closerToOne(a, b float64) bool {
	da, db := a, b
	if da < 1 {
		da = 1 / da
	}
	if db < 1 {
		db = 1 / db
	}
	if da != db {
		return da < db
	}
	return a < b
}
