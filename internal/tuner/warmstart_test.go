package tuner

import (
	"encoding/json"
	"math"
	"testing"

	"mcopt/internal/archive"
	"mcopt/internal/experiment"
	"mcopt/internal/gfunc"
	"mcopt/problem"

	_ "mcopt/problem/builtin"
)

// golaEnvelope builds a result-envelope fragment holding a normalized gola
// problem spec, and returns it with the untuned default schedule its
// instance implies — the exact baseline recordBaseYs must recompute.
func golaEnvelope(t *testing.T, b gfunc.Builder, cells int, seed uint64) (json.RawMessage, []float64) {
	t.Helper()
	def, ok := problem.Lookup("gola")
	if !ok {
		t.Fatal("gola kind not registered")
	}
	p := problem.Spec{Kind: "gola", Cells: cells, Seed: seed}
	def.Normalize(&p)
	inst, err := def.Compile(&p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Spec struct {
			Problem problem.Spec `json:"problem"`
		} `json:"spec"`
	}
	env.Spec.Problem = p
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return raw, b.DefaultYs(inst.Scale)
}

// archiveWith writes the given records into a fresh archive directory.
func archiveWith(t *testing.T, recs ...*archive.Record) string {
	t.Helper()
	dir := t.TempDir()
	a, err := archive.Open(archive.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := a.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func scaled(ys []float64, m float64) []float64 {
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = y * m
	}
	return out
}

func TestWarmStartMinesBestHistoricalMultiplier(t *testing.T) {
	b, _ := gfunc.ByID(1) // Metropolis
	env, base := golaEnvelope(t, b, 12, 3)
	dir := archiveWith(t,
		// The winner: biggest reduction, multiplier 1.4.
		&archive.Record{ID: "a", Kind: "gola", G: b.Name, State: "done",
			Ys: scaled(base, 1.4), Reduction: 50, Envelope: env},
		// Worse history for the same class.
		&archive.Record{ID: "b", Kind: "gola", G: b.Name, State: "done",
			Ys: scaled(base, 0.5), Reduction: 10, Envelope: env},
		// Filtered out: failed state, wrong kind, unknown class, no envelope.
		&archive.Record{ID: "c", Kind: "gola", G: b.Name, State: "failed",
			Ys: scaled(base, 16), Envelope: env},
		&archive.Record{ID: "d", Kind: "maxcut", G: b.Name, State: "done",
			Ys: scaled(base, 16), Reduction: 999, Envelope: env},
		&archive.Record{ID: "e", Kind: "gola", G: "no such class", State: "done",
			Ys: scaled(base, 16), Reduction: 999, Envelope: env},
		&archive.Record{ID: "f", Kind: "gola", G: b.Name, State: "done",
			Ys: scaled(base, 16), Reduction: 999},
	)
	priors, err := WarmStart(WarmStartOptions{Dir: dir, Kind: "gola"})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := priors[b.Name]
	if !ok {
		t.Fatalf("no prior for %s: %+v", b.Name, priors)
	}
	if math.Abs(p.Multiplier-1.4) > 1e-9 {
		t.Fatalf("prior multiplier = %g, want 1.4", p.Multiplier)
	}
	if p.Records != 2 {
		t.Fatalf("prior saw %d records, want 2", p.Records)
	}
	if p.Reduction != 50 {
		t.Fatalf("prior reduction = %g, want 50", p.Reduction)
	}
	if len(priors) != 1 {
		t.Fatalf("priors for %d classes, want 1: %+v", len(priors), priors)
	}
}

func TestWarmStartEmptyOrMissingArchive(t *testing.T) {
	priors, err := WarmStart(WarmStartOptions{Dir: t.TempDir() + "/nope", Kind: "gola"})
	if err != nil {
		t.Fatal(err)
	}
	if len(priors) != 0 {
		t.Fatalf("priors from a missing archive: %+v", priors)
	}
}

func TestProbeMultipliers(t *testing.T) {
	got := ProbeMultipliers(1.4)
	if len(got) != 3 || got[1] != 1.4 {
		t.Fatalf("probe grid = %v", got)
	}
	if math.Abs(got[2]/got[1]-math.Sqrt2) > 1e-12 || math.Abs(got[1]/got[0]-math.Sqrt2) > 1e-12 {
		t.Fatalf("probe steps not √2: %v", got)
	}
}

func TestRatioMultiplier(t *testing.T) {
	if m, ok := ratioMultiplier([]float64{2, 8}, []float64{1, 4}); !ok || m != 2 {
		t.Fatalf("uniform scaling: got %g, %v", m, ok)
	}
	// Non-uniform scaling lands on the geometric mean.
	if m, ok := ratioMultiplier([]float64{2, 8}, []float64{1, 1}); !ok || math.Abs(m-4) > 1e-12 {
		t.Fatalf("geometric mean: got %g, %v", m, ok)
	}
	for _, bad := range [][2][]float64{
		{{1, 2}, {1}},       // shape mismatch
		{{0, 2}, {1, 2}},    // zero y
		{{1, 2}, {1, 0}},    // zero base
		{{-1, 2}, {1, 2}},   // negative
		{{}, {}},            // empty
		{{1}, {math.NaN()}}, // NaN
	} {
		if _, ok := ratioMultiplier(bad[0], bad[1]); ok {
			t.Fatalf("ratioMultiplier accepted %v / %v", bad[0], bad[1])
		}
	}
}

// TestWarmTuneShrinksGridWithoutLosingQuality is the acceptance check: a
// warm-started TuneClass probes 3 grid points instead of the full sweep,
// and — because the probe grid contains the historical winner itself — its
// best reduction is at least the full grid's.
func TestWarmTuneShrinksGridWithoutLosingQuality(t *testing.T) {
	start, n := golaStart(1, 3)
	b, _ := gfunc.ByID(1) // Metropolis
	cfg := Config{Budget: 300, Instances: n, Seed: 1}
	full, err := TuneClass(b, experiment.GOLAScale(), start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Scores) != len(DefaultMultipliers) {
		t.Fatalf("full grid ran %d points, want %d", len(full.Scores), len(DefaultMultipliers))
	}

	// History: one archived run that used the full grid's winning schedule.
	env, base := golaEnvelope(t, b, 12, 3)
	dir := archiveWith(t, &archive.Record{
		ID: "hist", Kind: "gola", G: b.Name, State: "done",
		Ys: scaled(base, full.Best.Multiplier), Reduction: full.Best.Reduction, Envelope: env,
	})
	priors, err := WarmStart(WarmStartOptions{Dir: dir, Kind: "gola"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(priors[b.Name].Multiplier-full.Best.Multiplier) > 1e-9 {
		t.Fatalf("prior %g, want the archived winner %g", priors[b.Name].Multiplier, full.Best.Multiplier)
	}

	cfg.Warm = priors
	warm, err := TuneClass(b, experiment.GOLAScale(), start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Scores) >= len(full.Scores) {
		t.Fatalf("warm grid (%d points) did not shrink the full grid (%d)", len(warm.Scores), len(full.Scores))
	}
	if len(warm.Scores) != 3 {
		t.Fatalf("warm grid ran %d points, want 3", len(warm.Scores))
	}
	if warm.Best.Reduction < full.Best.Reduction {
		t.Fatalf("warm best %g worse than full-grid best %g", warm.Best.Reduction, full.Best.Reduction)
	}
}
