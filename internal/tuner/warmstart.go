package tuner

import (
	"encoding/json"
	"math"

	"mcopt/internal/archive"
	"mcopt/internal/gfunc"
	"mcopt/problem"
)

// Warm starts mine the run archive (internal/archive) for schedule priors:
// every retired done job records the temperature schedule its replicas
// actually ran, and the ratio of that schedule to the class's untuned
// default recovers the multiplier the job was effectively tuned to. The
// best-performing historical multiplier per (kind, g class) then centers a
// three-point probe grid, shrinking the §4.2.1 search from the full
// DefaultMultipliers sweep to a neighborhood check — the paper's grid
// search, warm-started by a million jobs of history.

// Prior is the warm-start prior mined for one g class.
type Prior struct {
	// Class is the gfunc builder name, e.g. "Metropolis".
	Class string
	// Multiplier is the schedule scaling of the best archived run.
	Multiplier float64
	// Reduction is the cost reduction that run achieved — the ranking key,
	// comparable only within one class's records.
	Reduction float64
	// Records is how many archived runs informed the class.
	Records int
}

// Priors maps class name → mined prior. Config.Warm consumes it.
type Priors map[string]Prior

// WarmStartOptions configures the archive scan.
type WarmStartOptions struct {
	// Dir is the archive directory (mcoptd's DATA/archive). It is opened
	// read-only, so a live daemon can keep writing while olatune reads.
	Dir string
	// Kind filters to one problem kind ("gola", "nola", ...): schedules tuned
	// on one cost regime should not seed another.
	Kind string
	// Logf reports scan progress and damage; nil discards.
	Logf func(format string, args ...any)
}

// WarmStart scans the archive for done runs of the given kind and returns
// the best historical multiplier per g class. Classes with no usable
// history are simply absent — TuneClass falls back to the full grid. The
// exact untuned baseline for each record is recomputed by compiling the
// record's own problem spec (carried in the result envelope) through the
// problem registry, so per-instance scale differences cannot skew the
// recovered multiplier; the caller must have the relevant kinds registered
// (import mcopt/problem/builtin).
//
// A damaged archive is not fatal: the readable prefix still yields priors
// and the damage is logged. Only a missing/unopenable directory errors.
func WarmStart(opts WarmStartOptions) (Priors, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	a, err := archive.Open(archive.Options{Dir: opts.Dir, ReadOnly: true, Logf: logf})
	if err != nil {
		return nil, err
	}
	defer a.Close()

	byName := map[string]gfunc.Builder{}
	for _, b := range gfunc.Classes() {
		byName[b.Name] = b
	}
	priors := Priors{}
	scanned := 0
	err = a.Scan(archive.Filter{Kind: opts.Kind, State: "done"}, func(rec *archive.Record) bool {
		scanned++
		b, ok := byName[rec.G]
		if !ok || !b.NeedsY || len(rec.Ys) == 0 {
			return true
		}
		base := recordBaseYs(b, rec)
		mult, ok := ratioMultiplier(rec.Ys, base)
		if !ok {
			return true
		}
		// Quantize: floating-point recovery of a schedule written as
		// base×m lands within an ulp of m, but grid labels (and the RNG
		// streams derived from them) key on the multiplier's exact value, so
		// an ulp of drift would make every re-mined probe a fresh run. Four
		// significant digits is far below schedule sensitivity and snaps
		// recovered values back onto the multiplier that produced them.
		mult = roundSig(mult, 4)
		p, seen := priors[b.Name]
		if !seen {
			priors[b.Name] = Prior{Class: b.Name, Multiplier: mult, Reduction: rec.Reduction, Records: 1}
			return true
		}
		p.Records++
		if rec.Reduction > p.Reduction ||
			(rec.Reduction == p.Reduction && closerToOne(mult, p.Multiplier)) {
			p.Multiplier, p.Reduction = mult, rec.Reduction
		}
		priors[b.Name] = p
		return true
	})
	if err != nil {
		if !archive.IsCorrupt(err) {
			return nil, err
		}
		logf("tuner: warm start: archive damaged, mining the readable prefix: %v", err)
	}
	logf("tuner: warm start: %d archived run(s) yielded priors for %d class(es)", scanned, len(priors))
	return priors, nil
}

// recordBaseYs recomputes the untuned (multiplier-1) schedule the record's
// job would have defaulted to. The result envelope carries the normalized
// problem spec verbatim; compiling it reproduces the instance's scale
// exactly (compilation is deterministic, and the schedule depends only on
// the spec, not the job seed). Nil when the envelope is unusable.
func recordBaseYs(b gfunc.Builder, rec *archive.Record) []float64 {
	var env struct {
		Spec struct {
			Problem problem.Spec `json:"problem"`
		} `json:"spec"`
	}
	if json.Unmarshal(rec.Envelope, &env) != nil || env.Spec.Problem.Kind == "" {
		return nil
	}
	def, ok := problem.Lookup(env.Spec.Problem.Kind)
	if !ok {
		return nil
	}
	p := env.Spec.Problem
	inst, err := def.Compile(&p, 0)
	if err != nil {
		return nil
	}
	return b.DefaultYs(inst.Scale)
}

// ratioMultiplier recovers the scalar multiplier relating ys to base as the
// geometric mean of the per-level ratios (exact when ys really is a uniform
// scaling; a least-distortion fit otherwise). False when the shapes differ
// or any ratio is degenerate.
func ratioMultiplier(ys, base []float64) (float64, bool) {
	if len(base) == 0 || len(base) != len(ys) {
		return 0, false
	}
	logSum := 0.0
	for i := range ys {
		if !(base[i] > 0) || !(ys[i] > 0) {
			return 0, false
		}
		logSum += math.Log(ys[i] / base[i])
	}
	m := math.Exp(logSum / float64(len(ys)))
	if math.IsNaN(m) || math.IsInf(m, 0) || m <= 0 {
		return 0, false
	}
	return m, true
}

// roundSig rounds a positive float to the given number of significant
// decimal digits.
func roundSig(m float64, digits int) float64 {
	if m <= 0 || math.IsInf(m, 0) {
		return m
	}
	scale := math.Pow(10, float64(digits)-math.Ceil(math.Log10(m)))
	return math.Round(m*scale) / scale
}

// ProbeMultipliers is the neighborhood grid a warm start searches instead
// of the full sweep: the prior itself and one √2 step to either side — the
// same step size DefaultMultipliers uses, so a drifted prior still sees its
// neighbors and the next warm start re-centers on whichever probe wins.
func ProbeMultipliers(m float64) []float64 {
	return []float64{m / math.Sqrt2, m, m * math.Sqrt2}
}
