package checkpoint

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcopt/internal/faultinject"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	fp := Fingerprint("test", "round-trip")
	j, err := Open(path, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.AppendInt64(context.Background(), i*3, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := Open(path, fp, true)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Len() != 5 {
		t.Fatalf("Len = %d, want 5", back.Len())
	}
	got := map[int]int64{}
	if err := back.RestoreInt64(13, func(slot int, v int64) { got[slot] = v }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got[i*3] != int64(100+i) {
			t.Fatalf("slot %d = %d, want %d", i*3, got[i*3], 100+i)
		}
	}
	if !back.Done(3) || back.Done(1) {
		t.Fatal("Done wrong")
	}
}

func TestJournalRejectsExistingWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(path, 7, false); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("existing journal reopened without resume: %v", err)
	}
}

func TestJournalRejectsStaleFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	j.AppendInt64(context.Background(), 0, 1)
	j.Close()
	if _, err := Open(path, 8, true); err == nil || !strings.Contains(err.Error(), "stale journal") {
		t.Fatalf("stale journal accepted: %v", err)
	}
}

func TestJournalRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 7, true); err == nil || !strings.Contains(err.Error(), "not a journal") {
		t.Fatalf("garbage file accepted: %v", err)
	}
	short := filepath.Join(t.TempDir(), "short.wal")
	if err := os.WriteFile(short, []byte("MC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short, 7, true); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// TestJournalTornTail simulates a crash mid-append: the trailing record is
// cut at every possible byte boundary, and resume must recover exactly the
// intact prefix, truncate the tail, and accept new appends.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	fp := Fingerprint("torn")
	j, err := Open(path, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.AppendInt64(context.Background(), i, int64(10*i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recordSize := (len(whole) - headerSize) / 3

	for cut := 1; cut <= recordSize; cut++ {
		torn := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(torn, whole[:len(whole)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		back, err := Open(torn, fp, true)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if back.Len() != 2 {
			t.Fatalf("cut %d: recovered %d records, want 2", cut, back.Len())
		}
		// The torn frame is gone; appending its slot again must succeed and
		// survive another resume.
		if err := back.AppendInt64(context.Background(), 2, 20); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		back.Close()
		again, err := Open(torn, fp, true)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if again.Len() != 3 {
			t.Fatalf("cut %d: after repair Len = %d, want 3", cut, again.Len())
		}
		again.Close()
		os.Remove(torn)
	}
}

func TestJournalCorruptMiddleStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	fp := Fingerprint("corrupt")
	j, err := Open(path, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		j.AppendInt64(context.Background(), i, int64(i))
	}
	j.Close()
	raw, _ := os.ReadFile(path)
	// Flip a payload byte in the second record: its CRC fails, and the scan
	// must keep only the first record, discarding the (physically intact)
	// later ones rather than trusting a file with a corrupt interior.
	recordSize := (len(raw) - headerSize) / 4
	raw[headerSize+recordSize+9] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := Open(path, fp, true)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Len() != 1 || !back.Done(0) {
		t.Fatalf("recovered %d records, want just slot 0", back.Len())
	}
}

func TestJournalRestoreRejectsOutOfRangeSlot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.AppendInt64(context.Background(), 9, 1)
	if err := j.RestoreInt64(5, func(int, int64) {}); err == nil {
		t.Fatal("out-of-range slot restored")
	}
}

func TestJournalAppendFailureLatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.AppendInt64(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Set("checkpoint.append:1:error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	if err := j.AppendInt64(context.Background(), 1, 2); err == nil {
		t.Fatal("injected fault not surfaced")
	}
	faultinject.Reset()
	// The journal is poisoned: later appends must keep failing instead of
	// writing after a possibly-torn tail.
	if err := j.AppendInt64(context.Background(), 2, 3); err == nil {
		t.Fatal("append succeeded after a prior failure")
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if j.Done(0) || j.Len() != 0 {
		t.Fatal("nil journal reports state")
	}
	if err := j.AppendInt64(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.RestoreInt64(1, func(int, int64) { t.Fatal("restored from nil") }); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var c *Config
	got, err := c.Journal("x", 1)
	if got != nil || err != nil {
		t.Fatal("nil config opened a journal")
	}
}

func TestConfigJournalNamesDistinctFingerprints(t *testing.T) {
	dir := t.TempDir()
	c := &Config{Dir: dir}
	a, err := c.Journal("Table 4.1 — GOLA", Fingerprint("a"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := c.Journal("Table 4.1 — GOLA", Fingerprint("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ents, _ := os.ReadDir(dir)
	if len(ents) != 2 {
		t.Fatalf("%d journal files, want 2", len(ents))
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "table-4-1-gola-") {
			t.Fatalf("unsanitized journal name %q", e.Name())
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	if Fingerprint("a", "b") == Fingerprint("ab") {
		t.Fatal("field boundaries not separated")
	}
	if Fingerprint("a") == Fingerprint("b") {
		t.Fatal("collision")
	}
}

func TestAppendRefusesCancelledContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A cell whose context was cancelled mid-budget holds a partial result;
	// journaling it would make a resumed run diverge from an uninterrupted
	// one. The append must refuse and leave the slot unrecorded.
	if err := j.AppendInt64(ctx, 0, 1); err != context.Canceled {
		t.Fatalf("Append with cancelled ctx = %v, want context.Canceled", err)
	}
	if j.Done(0) {
		t.Fatal("cancelled append still recorded the slot")
	}
	// The refusal is not a write failure: the journal stays usable.
	if err := j.AppendInt64(context.Background(), 0, 1); err != nil {
		t.Fatalf("append after cancelled-ctx refusal: %v", err)
	}
	// A nil journal ignores the context entirely — checkpointing is off and
	// partial tables remain the caller's business.
	var nj *Journal
	if err := nj.AppendInt64(ctx, 0, 1); err != nil {
		t.Fatalf("nil journal with cancelled ctx = %v, want nil", err)
	}
}
