// Package checkpoint makes long grid runs durable: an append-only
// write-ahead journal records one fsync'd, CRC-framed record per completed
// cell, keyed by a fingerprint of the run's parameters. A run restarted with
// the same parameters loads the journal, skips the recorded slots, computes
// only the remainder, and produces output byte-identical to an uninterrupted
// run — the scheduler's determinism contract (internal/sched) extended
// across process lifetimes.
//
// Journal file layout (little-endian):
//
//	header  "MCWAL001" | fingerprint uint64
//	record  slot uint32 | payloadLen uint32 | payload | crc32 uint32
//
// The CRC covers slot, length, and payload (IEEE). On resume the journal is
// scanned from the start; the first torn or corrupt frame — what a crash
// mid-append leaves behind — ends the scan and the file is truncated to the
// last intact record, so the affected cell is simply recomputed. A journal
// whose fingerprint does not match the run is rejected outright: stale state
// must never be replayed into a differently-shaped grid.
package checkpoint

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"mcopt/internal/faultinject"
)

const (
	magic = "MCWAL001"
	// headerSize is the magic plus the fingerprint.
	headerSize = len(magic) + 8
	// maxPayload bounds a record's payload, protecting the resume scan from
	// a corrupt length field demanding a giant allocation.
	maxPayload = 1 << 20
)

// Config selects where a run journals and whether an existing journal may be
// continued. A nil *Config (or an empty Dir) disables durability; Journal
// then returns a nil *Journal whose methods are all no-ops, so run surfaces
// need no branching.
type Config struct {
	// Dir is the checkpoint directory; each run surface keeps its own
	// fingerprinted journal file beneath it.
	Dir string
	// Resume permits continuing a journal left by an earlier run. Without it
	// an existing journal is an error — refusing to guess whether the caller
	// meant to continue or to start over.
	Resume bool
}

// Journal opens the journal for a run surface named name whose parameters
// hash to fp. The file name carries both, so differently-parameterized runs
// sharing a checkpoint directory never collide.
func (c *Config) Journal(name string, fp uint64) (*Journal, error) {
	if c == nil || c.Dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(c.Dir, fmt.Sprintf("%s-%016x.wal", sanitize(name), fp))
	return Open(path, fp, c.Resume)
}

// FromFlags builds the Config the CLIs share from their -checkpoint and
// -resume flags. An empty dir disables durability (nil Config, nil error);
// -resume without a directory is a usage error.
func FromFlags(dir string, resume bool) (*Config, error) {
	if dir == "" {
		if resume {
			return nil, errors.New("-resume requires -checkpoint DIR")
		}
		return nil, nil
	}
	return &Config{Dir: dir, Resume: resume}, nil
}

// sanitize maps a run-surface name onto a safe file stem.
func sanitize(name string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = true
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// Fingerprint hashes an ordered list of parameter fields (FNV-1a). Every
// field that shapes a grid or its cell results — suite name, method set,
// budgets, seeds, grid dimensions — must be included, so that a journal
// written under different parameters can never be replayed.
func Fingerprint(fields ...string) uint64 {
	h := fnv.New64a()
	for _, f := range fields {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Journal is an append-only record of completed cells. All methods are safe
// for concurrent use and safe on a nil receiver (no-ops), so surfaces can
// thread an optional journal without branching.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[int][]byte
	// failed latches the first append failure: once a write goes wrong the
	// file tail is suspect, so further appends refuse rather than interleave
	// fresh records after a possibly-torn frame.
	failed error
}

// Open opens (or creates) the journal at path for a run fingerprinted fp.
// Without resume the file must not already exist. With resume an existing
// file is validated — magic, fingerprint — and its intact records loaded;
// the file is truncated after the last intact record so appends continue
// from a clean tail.
func Open(path string, fp uint64, resume bool) (*Journal, error) {
	if !resume {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			if errors.Is(err, fs.ErrExist) {
				return nil, fmt.Errorf(
					"checkpoint: journal %s already exists (earlier run?); pass -resume to continue it or remove it", path)
			}
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		j := &Journal{f: f, path: path, done: map[int][]byte{}}
		if err := j.writeHeader(fp); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
		return j, nil
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	j := &Journal{f: f, path: path, done: map[int][]byte{}}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if size == 0 {
		// Resuming a run that never checkpointed: start a fresh journal.
		if err := j.writeHeader(fp); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	if err := j.load(fp, size); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func (j *Journal) writeHeader(fp uint64) error {
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint64(hdr[len(magic):], fp)
	if _, err := j.f.Write(hdr); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", j.path, err)
	}
	return syncDir(filepath.Dir(j.path))
}

// load validates the header and replays every intact record, truncating the
// file at the first torn or corrupt frame.
func (j *Journal) load(fp uint64, size int64) error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", j.path, err)
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(j.f, hdr); err != nil {
		return fmt.Errorf("checkpoint: %s: truncated header (%d bytes): not a journal", j.path, size)
	}
	if string(hdr[:len(magic)]) != magic {
		return fmt.Errorf("checkpoint: %s: bad magic %q: not a journal", j.path, hdr[:len(magic)])
	}
	if got := binary.LittleEndian.Uint64(hdr[len(magic):]); got != fp {
		return fmt.Errorf(
			"checkpoint: %s: stale journal: fingerprint %016x does not match this run's %016x (parameters changed); remove it to start over",
			j.path, got, fp)
	}

	r := newCountReader(j.f, int64(headerSize))
	for {
		frameStart := r.off
		var fixed [8]byte
		if _, err := io.ReadFull(r, fixed[:]); err != nil {
			// Clean EOF or a torn length prefix: the journal ends here.
			return j.truncate(frameStart)
		}
		slot := binary.LittleEndian.Uint32(fixed[:4])
		n := binary.LittleEndian.Uint32(fixed[4:])
		if n > maxPayload {
			return j.truncate(frameStart)
		}
		buf := make([]byte, int(n)+4)
		if _, err := io.ReadFull(r, buf); err != nil {
			return j.truncate(frameStart)
		}
		payload, sum := buf[:n], binary.LittleEndian.Uint32(buf[n:])
		crc := crc32.NewIEEE()
		crc.Write(fixed[:])
		crc.Write(payload)
		if crc.Sum32() != sum {
			return j.truncate(frameStart)
		}
		j.done[int(slot)] = payload
	}
}

// truncate cuts the journal at off (the first bad frame, or EOF) and leaves
// the write offset there.
func (j *Journal) truncate(off int64) error {
	if err := j.f.Truncate(off); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", j.path, err)
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", j.path, err)
	}
	return nil
}

// Done reports whether slot i was completed by an earlier run. It is the
// scheduler's Skip predicate. Nil-safe.
func (j *Journal) Done(i int) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[i]
	return ok
}

// Len counts the recorded slots. Nil-safe.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Append records slot's payload: CRC-framed, written, fsync'd. After the
// first failure every subsequent Append returns the same error — the file
// tail is suspect, and appending fresh records after a torn frame would hide
// them from the resume scan. Nil-safe (no-op).
//
// ctx is the cell's run context. A cancelled context means the cell was
// stopped mid-budget and its value is partial; recording it would make a
// resumed run keep the truncated result and silently diverge from an
// uninterrupted one, so Append refuses and returns the context error (which
// also marks the cell incomplete in the scheduler's report). On a nil
// journal the context is ignored — without durability a partially-run cell
// stays "completed", preserving the pre-checkpoint partial-table behavior.
func (j *Journal) Append(ctx context.Context, slot int, payload []byte) error {
	if j == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("checkpoint: payload for slot %d is %d bytes (limit %d)", slot, len(payload), maxPayload)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	if _, ok := j.done[slot]; ok {
		return nil
	}
	frame := make([]byte, 8+len(payload)+4)
	binary.LittleEndian.PutUint32(frame[:4], uint32(slot))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	copy(frame[8:], payload)
	crc := crc32.NewIEEE()
	crc.Write(frame[:8+len(payload)])
	binary.LittleEndian.PutUint32(frame[8+len(payload):], crc.Sum32())

	fail := func(err error) error {
		j.failed = fmt.Errorf("checkpoint: append slot %d: %w", slot, err)
		return j.failed
	}
	if err := faultinject.Point("checkpoint.append"); err != nil {
		return fail(err)
	}
	if _, err := faultinject.Write("checkpoint.write", j.f, frame); err != nil {
		return fail(err)
	}
	if err := faultinject.Point("checkpoint.sync"); err != nil {
		return fail(err)
	}
	if err := j.f.Sync(); err != nil {
		return fail(err)
	}
	j.done[slot] = append([]byte(nil), payload...)
	return nil
}

// Restore hands every recorded slot to set, validating slots against the
// grid size n — an out-of-range slot means the journal belongs to a
// different grid despite a fingerprint match, and is rejected. Nil-safe.
func (j *Journal) Restore(n int, set func(slot int, payload []byte) error) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for slot, payload := range j.done {
		if slot < 0 || slot >= n {
			return fmt.Errorf("checkpoint: %s: slot %d out of range [0,%d): journal does not match this grid", j.path, slot, n)
		}
		if err := set(slot, payload); err != nil {
			return fmt.Errorf("checkpoint: %s: slot %d: %w", j.path, slot, err)
		}
	}
	return nil
}

// Close closes the journal file. The completed state is already durable
// (every append fsyncs), so Close is not a commit point. Nil-safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// AppendInt64 records an integer cell result for slot. Nil-safe.
func (j *Journal) AppendInt64(ctx context.Context, slot int, v int64) error {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], uint64(v))
	return j.Append(ctx, slot, p[:])
}

// AppendFloat64 records a float cell result for slot. Nil-safe.
func (j *Journal) AppendFloat64(ctx context.Context, slot int, v float64) error {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], math.Float64bits(v))
	return j.Append(ctx, slot, p[:])
}

// RestoreInt64 replays integer cell results recorded by AppendInt64.
func (j *Journal) RestoreInt64(n int, set func(slot int, v int64)) error {
	return j.Restore(n, func(slot int, payload []byte) error {
		if len(payload) != 8 {
			return fmt.Errorf("payload is %d bytes, want 8", len(payload))
		}
		set(slot, int64(binary.LittleEndian.Uint64(payload)))
		return nil
	})
}

// RestoreFloat64 replays float cell results recorded by AppendFloat64.
func (j *Journal) RestoreFloat64(n int, set func(slot int, v float64)) error {
	return j.Restore(n, func(slot int, payload []byte) error {
		if len(payload) != 8 {
			return fmt.Errorf("payload is %d bytes, want 8", len(payload))
		}
		set(slot, math.Float64frombits(binary.LittleEndian.Uint64(payload)))
		return nil
	})
}

// countReader tracks the absolute file offset during the resume scan.
type countReader struct {
	r   io.Reader
	off int64
}

func newCountReader(r io.Reader, off int64) *countReader { return &countReader{r: r, off: off} }

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += int64(n)
	return n, err
}

// syncDir mirrors atomicio's directory sync: best-effort, since not every
// platform supports syncing directories.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
