// Package lease is the coordination core of distributed mcoptd: a table of
// time-limited, epoch-stamped leases over the replica index range of one
// job's grid. Replicas are pure functions of (spec, index) — the property
// every run surface in this repo already guarantees — so the only thing a
// fault-tolerant distributor has to get right is bookkeeping: never lose a
// slot, never let two conflicting owners both think they hold it, and make
// re-computation of a slot harmless. The table provides exactly that:
//
//   - Acquire grants a contiguous window of free slots to a runner, stamped
//     with a monotonically increasing epoch and a renewal deadline. When no
//     free slots remain it work-steals: the live lease with the most
//     uncommitted slots is split and its back half re-granted at a fresh
//     epoch, so an idle runner shortens a straggler instead of waiting on it.
//   - Renew extends a lease's deadline — the heartbeat. A renewal presented
//     after expiry, or with a stale epoch, fails with an *EpochError that
//     names both epochs, so the runner knows its lease is gone rather than
//     retrying forever.
//   - Commit records a slot's result through the table's commit hook —
//     in mcoptd, an append to the job's §9 checkpoint journal, which makes
//     the journal the lease-commit log. Committing an already-committed slot
//     is idempotent (retried requests, re-leased ranges recomputing the same
//     pure function), committing through a dead or superseded lease is an
//     *EpochError, and committing a slot stolen from the lease is a
//     *NotHeldError so the straggler skips ahead instead of duplicating the
//     thief's work.
//   - ExpireDead sweeps leases whose deadline has passed, returning their
//     uncommitted slots to the free pool — the next Acquire re-leases them
//     at a higher epoch. A resumed range recomputes byte-identical payloads,
//     and the journal's per-slot idempotency absorbs any race with a
//     not-quite-dead runner, so no interleaving of crashes, partitions, and
//     stragglers can corrupt or duplicate a result.
//
// The table never touches the network; internal/service wires it to HTTP
// endpoints and internal/runnerclient speaks to those. All methods are safe
// for concurrent use. See DESIGN.md §14.
package lease

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// EpochError reports an operation presented against a lease generation that
// is no longer current: the lease expired (and its range may have been
// re-granted at a later epoch), the presented epoch is stale, or the lease
// was never granted. The two epochs make the failure diagnosable from the
// runner side without another round trip.
type EpochError struct {
	// Lease is the lease ID the operation named.
	Lease string
	// Presented is the epoch the caller sent.
	Presented uint64
	// Current is the epoch the lease last held (0 when the table has no
	// record of the lease at all).
	Current uint64
	// Reason is "expired", "stale-epoch", or "unknown".
	Reason string
}

func (e *EpochError) Error() string {
	return fmt.Sprintf("lease %s %s: presented epoch %d, lease epoch %d",
		e.Lease, e.Reason, e.Presented, e.Current)
}

// NotHeldError reports a commit for a slot the lease no longer holds —
// the slot was stolen by another runner while this one was computing it.
// The right response is to skip the slot and continue with the rest of the
// window; the thief owns it now, and recomputing it yields identical bytes
// anyway.
type NotHeldError struct {
	Lease string
	Slot  int
}

func (e *NotHeldError) Error() string {
	return fmt.Sprintf("lease %s does not hold slot %d (stolen)", e.Lease, e.Slot)
}

// CommitFunc is the table's durable commit log hook: it receives each
// freshly committed slot exactly once, before the commit is acknowledged.
// In mcoptd it appends the payload to the job's checkpoint journal and
// fills the result slot. An error aborts the commit: the slot stays
// uncommitted and the caller sees the error.
type CommitFunc func(slot int, payload []byte) error

// Options shapes a Table.
type Options struct {
	// TTL is the lease lifetime between renewals (default 10s).
	TTL time.Duration
	// Chunk bounds the slots per fresh grant (default 8).
	Chunk int
	// Commit is the durable commit hook; required.
	Commit CommitFunc
	// OnExpire, when non-nil, observes every lease retired for a missed
	// deadline — whether found by an ExpireDead sweep or lazily by
	// Acquire/Renew/Commit. It runs under the table lock and must not call
	// back into the table; metrics and logging are its intended use.
	OnExpire func(Expired)
	// Now is the clock (default time.Now); tests inject a fake one.
	Now func() time.Time
}

// Grant is an acquired lease: a contiguous slot window [Start, End) the
// runner should compute in ascending order, skipping Done.
type Grant struct {
	// ID names the lease; Epoch stamps its generation. Both must accompany
	// every renew and commit.
	ID    string
	Epoch uint64
	// Start/End bound the granted window, End exclusive.
	Start, End int
	// Done lists slots inside the window that are already committed (a
	// stolen window can contain some); the runner skips them.
	Done []int
	// Deadline is when the lease expires without renewal.
	Deadline time.Time
	// Stolen marks a grant carved out of a straggler's lease.
	Stolen bool
}

// leaseState is one live lease.
type leaseState struct {
	id       string
	runner   string
	epoch    uint64
	start    int // current window [start, end); stealing shrinks end
	end      int
	deadline time.Time
}

// tomb remembers an ended lease so late renews and commits get the correct
// epoch error instead of "unknown".
type tomb struct {
	epoch  uint64
	reason string // "expired" or "done"
}

// Table tracks one grid's slots through free → leased → committed. The
// zero value is unusable; construct with New.
type Table struct {
	mu        sync.Mutex
	n         int
	opts      Options
	committed []bool
	holder    []*leaseState // per-slot owning lease, nil when free or committed
	leases    map[string]*leaseState
	tombs     map[string]tomb
	epoch     uint64
	nextID    int64
	remaining int // uncommitted slots
	done      chan struct{}
}

// New builds a table over n slots. Slots already completed by an earlier
// run are marked via MarkCommitted before the first Acquire.
func New(n int, opts Options) *Table {
	if opts.TTL <= 0 {
		opts.TTL = 10 * time.Second
	}
	if opts.Chunk <= 0 {
		opts.Chunk = 8
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	t := &Table{
		n:         n,
		opts:      opts,
		committed: make([]bool, n),
		holder:    make([]*leaseState, n),
		leases:    map[string]*leaseState{},
		tombs:     map[string]tomb{},
		remaining: n,
		done:      make(chan struct{}),
	}
	if n == 0 {
		close(t.done)
	}
	return t
}

// MarkCommitted records slot as already complete (restored from the
// journal) without invoking the commit hook. It is not an error to mark a
// slot twice.
func (t *Table) MarkCommitted(slot int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if slot < 0 || slot >= t.n || t.committed[slot] {
		return
	}
	t.committed[slot] = true
	t.holder[slot] = nil
	t.decRemainingLocked()
}

func (t *Table) decRemainingLocked() {
	t.remaining--
	if t.remaining == 0 {
		close(t.done)
	}
}

// Done returns a channel closed once every slot is committed.
func (t *Table) Done() <-chan struct{} { return t.done }

// Remaining counts uncommitted slots.
func (t *Table) Remaining() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.remaining
}

// Committed reports whether slot is committed.
func (t *Table) Committed(slot int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return slot >= 0 && slot < t.n && t.committed[slot]
}

// Acquire grants runner a lease. It prefers a contiguous window of up to
// Chunk free slots; with none free it steals the back half of the live
// lease holding the most uncommitted slots (needs at least 2, so a lease
// is never stolen down to nothing). ok is false when there is nothing to
// grant — every slot is committed or held by a lease too small to split.
func (t *Table) Acquire(runner string) (g Grant, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(t.opts.Now())

	start, end := t.freeRunLocked()
	stolen := false
	if start == end {
		var victim *leaseState
		victimUncommitted := 1 // require ≥ 2 to split
		for _, ls := range t.leases {
			if u := t.uncommittedInLocked(ls); u > victimUncommitted {
				victim, victimUncommitted = ls, u
			}
		}
		if victim == nil {
			return Grant{}, false
		}
		// Split at the midpoint of the victim's uncommitted slots: the
		// victim keeps the front (it is likely already computing there),
		// the thief takes the back.
		uncommitted := t.uncommittedSlotsLocked(victim)
		mid := uncommitted[len(uncommitted)/2]
		start, end = mid, victim.end
		victim.end = mid
		stolen = true
	}

	now := t.opts.Now()
	t.nextID++
	t.epoch++
	ls := &leaseState{
		id:       fmt.Sprintf("l-%d", t.nextID),
		runner:   runner,
		epoch:    t.epoch,
		start:    start,
		end:      end,
		deadline: now.Add(t.opts.TTL),
	}
	t.leases[ls.id] = ls
	var done []int
	for s := start; s < end; s++ {
		if t.committed[s] {
			done = append(done, s)
		} else {
			t.holder[s] = ls
		}
	}
	return Grant{
		ID:       ls.id,
		Epoch:    ls.epoch,
		Start:    start,
		End:      end,
		Done:     done,
		Deadline: ls.deadline,
		Stolen:   stolen,
	}, true
}

// freeRunLocked finds the first contiguous window holding up to Chunk free
// slots. Committed slots inside the window do not end it (a re-leased range
// can interleave committed and freed slots) — they ride along and are
// reported in the grant's Done list; leased slots do end it. Trailing
// committed slots are trimmed. Returns start == end when no slot is free.
func (t *Table) freeRunLocked() (start, end int) {
	for s := 0; s < t.n; s++ {
		if t.committed[s] || t.holder[s] != nil {
			continue
		}
		free, lastFree := 0, s
		for e := s; e < t.n && t.holder[e] == nil; e++ {
			if !t.committed[e] {
				if free == t.opts.Chunk {
					break
				}
				free++
				lastFree = e
			}
		}
		return s, lastFree + 1
	}
	return 0, 0
}

func (t *Table) uncommittedInLocked(ls *leaseState) int {
	u := 0
	for s := ls.start; s < ls.end; s++ {
		if t.holder[s] == ls && !t.committed[s] {
			u++
		}
	}
	return u
}

func (t *Table) uncommittedSlotsLocked(ls *leaseState) []int {
	var slots []int
	for s := ls.start; s < ls.end; s++ {
		if t.holder[s] == ls && !t.committed[s] {
			slots = append(slots, s)
		}
	}
	return slots
}

// Renew extends the lease's deadline by one TTL and returns the new
// deadline. A lease that expired, ended, or was never granted — or a stale
// epoch — fails with an *EpochError.
func (t *Table) Renew(id string, epoch uint64) (time.Time, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.opts.Now()
	t.expireLocked(now)
	ls, err := t.lookupLocked(id, epoch)
	if err != nil {
		return time.Time{}, err
	}
	ls.deadline = now.Add(t.opts.TTL)
	return ls.deadline, nil
}

// lookupLocked resolves a live lease by (id, epoch), translating misses
// into the precise epoch error.
func (t *Table) lookupLocked(id string, epoch uint64) (*leaseState, error) {
	if ls, ok := t.leases[id]; ok {
		if ls.epoch != epoch {
			return nil, &EpochError{Lease: id, Presented: epoch, Current: ls.epoch, Reason: "stale-epoch"}
		}
		return ls, nil
	}
	if tb, ok := t.tombs[id]; ok {
		return nil, &EpochError{Lease: id, Presented: epoch, Current: tb.epoch, Reason: tb.reason}
	}
	return nil, &EpochError{Lease: id, Presented: epoch, Reason: "unknown"}
}

// Commit records slot's payload through the commit hook. Idempotent for
// already-committed slots (the hook runs at most once per slot); an
// *EpochError for dead or superseded leases; a *NotHeldError for a live
// lease committing a slot that was stolen from it.
func (t *Table) Commit(id string, epoch uint64, slot int, payload []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(t.opts.Now())
	ls, err := t.lookupLocked(id, epoch)
	if err != nil {
		// A retried commit whose first attempt landed before the lease died
		// is already durable; acknowledge it rather than failing a request
		// that cannot hurt anything.
		if slot >= 0 && slot < t.n && t.committed[slot] {
			return nil
		}
		return err
	}
	if slot < 0 || slot >= t.n {
		return fmt.Errorf("lease %s: slot %d out of range [0,%d)", id, slot, t.n)
	}
	if t.committed[slot] {
		return nil
	}
	if t.holder[slot] != ls {
		return &NotHeldError{Lease: id, Slot: slot}
	}
	if err := t.opts.Commit(slot, payload); err != nil {
		return err
	}
	// The lease itself stays live until it expires even when this was its
	// last slot: a retired-on-completion lease would answer the runner's
	// in-flight renewals and duplicate commits with confusing epoch errors.
	t.committed[slot] = true
	t.holder[slot] = nil
	t.decRemainingLocked()
	return nil
}

// CommitLocal records slot's payload outside any lease — the coordinator's
// own fallback path when no live runner remains. If a lease still nominally
// holds the slot it is revoked from that lease (a later commit from the
// presumed-dead runner gets a NotHeldError, or an idempotent nil if it
// retried after this). Idempotent.
func (t *Table) CommitLocal(slot int, payload []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if slot < 0 || slot >= t.n {
		return fmt.Errorf("lease: local commit slot %d out of range [0,%d)", slot, t.n)
	}
	if t.committed[slot] {
		return nil
	}
	if err := t.opts.Commit(slot, payload); err != nil {
		return err
	}
	t.committed[slot] = true
	t.holder[slot] = nil
	t.decRemainingLocked()
	return nil
}

// Uncommitted snapshots the slots not yet committed, in ascending order —
// the coordinator's local-fallback work list.
func (t *Table) Uncommitted() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var slots []int
	for s := 0; s < t.n; s++ {
		if !t.committed[s] {
			slots = append(slots, s)
		}
	}
	return slots
}

// Expired describes one lease the sweep retired, for logs and metrics.
type Expired struct {
	ID     string
	Runner string
	Epoch  uint64
	// Freed lists the uncommitted slots returned to the pool.
	Freed []int
}

// ExpireDead retires every lease whose deadline has passed, returning the
// freed ranges. The freed slots become grantable immediately; the next
// Acquire re-leases them at a higher epoch.
func (t *Table) ExpireDead() []Expired {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.expireLocked(t.opts.Now())
}

func (t *Table) expireLocked(now time.Time) []Expired {
	var out []Expired
	for _, ls := range t.leases {
		if now.Before(ls.deadline) {
			continue
		}
		ex := Expired{
			ID:     ls.id,
			Runner: ls.runner,
			Epoch:  ls.epoch,
			Freed:  t.uncommittedSlotsLocked(ls),
		}
		out = append(out, ex)
		t.retireLocked(ls, "expired")
		if t.opts.OnExpire != nil {
			t.opts.OnExpire(ex)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// retireLocked removes a lease, freeing its uncommitted slots, and leaves a
// tombstone so late requests get the correct epoch error.
func (t *Table) retireLocked(ls *leaseState, reason string) {
	for s := ls.start; s < ls.end; s++ {
		if t.holder[s] == ls {
			t.holder[s] = nil
		}
	}
	delete(t.leases, ls.id)
	t.tombs[ls.id] = tomb{epoch: ls.epoch, reason: reason}
}

// Stats is a point-in-time gauge snapshot.
type Stats struct {
	Slots, Committed, Leased, Free int
	Live                           int // live leases
}

// Snapshot reports the table's current occupancy.
func (t *Table) Snapshot() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Stats{Slots: t.n, Live: len(t.leases)}
	for s := 0; s < t.n; s++ {
		switch {
		case t.committed[s]:
			st.Committed++
		case t.holder[s] != nil:
			st.Leased++
		default:
			st.Free++
		}
	}
	return st
}
