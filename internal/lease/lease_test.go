package lease

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// recorder captures commit-hook invocations.
type recorder struct {
	mu    sync.Mutex
	calls map[int]int
}

func newRecorder() *recorder { return &recorder{calls: map[int]int{}} }

func (r *recorder) commit(slot int, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls[slot]++
	return nil
}

func (r *recorder) count(slot int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls[slot]
}

func newTestTable(n, chunk int, clock *fakeClock, rec *recorder) *Table {
	return New(n, Options{
		TTL:    time.Second,
		Chunk:  chunk,
		Commit: rec.commit,
		Now:    clock.Now,
	})
}

func TestAcquireCommitLifecycle(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(4, 2, clock, rec)

	g1, ok := tbl.Acquire("r1")
	if !ok || g1.Start != 0 || g1.End != 2 || g1.Stolen {
		t.Fatalf("first grant = %+v, ok=%v; want fresh [0,2)", g1, ok)
	}
	g2, ok := tbl.Acquire("r2")
	if !ok || g2.Start != 2 || g2.End != 4 {
		t.Fatalf("second grant = %+v, ok=%v; want [2,4)", g2, ok)
	}
	if g2.Epoch <= g1.Epoch {
		t.Fatalf("epochs not monotone: %d then %d", g1.Epoch, g2.Epoch)
	}
	for s := g1.Start; s < g1.End; s++ {
		if err := tbl.Commit(g1.ID, g1.Epoch, s, []byte("x")); err != nil {
			t.Fatalf("commit slot %d: %v", s, err)
		}
	}
	for s := g2.Start; s < g2.End; s++ {
		if err := tbl.Commit(g2.ID, g2.Epoch, s, []byte("x")); err != nil {
			t.Fatalf("commit slot %d: %v", s, err)
		}
	}
	select {
	case <-tbl.Done():
	default:
		t.Fatal("table not done after all commits")
	}
	if rem := tbl.Remaining(); rem != 0 {
		t.Fatalf("remaining = %d, want 0", rem)
	}
}

func TestRenewAfterExpireRejectedWithEpochError(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(2, 2, clock, rec)
	g, _ := tbl.Acquire("r1")

	// Renewal inside the TTL extends the deadline.
	clock.Advance(500 * time.Millisecond)
	dl, err := tbl.Renew(g.ID, g.Epoch)
	if err != nil {
		t.Fatalf("renew inside TTL: %v", err)
	}
	if want := clock.Now().Add(time.Second); !dl.Equal(want) {
		t.Fatalf("deadline = %v, want %v", dl, want)
	}

	// Past the deadline the lease is gone; the renewal must identify the
	// epoch it presented and the epoch the lease died at.
	clock.Advance(2 * time.Second)
	_, err = tbl.Renew(g.ID, g.Epoch)
	var ee *EpochError
	if !errors.As(err, &ee) {
		t.Fatalf("renew after expire = %v, want *EpochError", err)
	}
	if ee.Reason != "expired" || ee.Presented != g.Epoch || ee.Current != g.Epoch {
		t.Fatalf("epoch error = %+v, want expired with both epochs %d", ee, g.Epoch)
	}
}

func TestCommitAfterReLeaseRejected(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(2, 2, clock, rec)
	g1, _ := tbl.Acquire("r1")

	clock.Advance(2 * time.Second) // g1 expires
	expired := tbl.ExpireDead()
	if len(expired) != 1 || expired[0].ID != g1.ID || len(expired[0].Freed) != 2 {
		t.Fatalf("expired = %+v, want g1 with 2 freed slots", expired)
	}
	g2, ok := tbl.Acquire("r2")
	if !ok || g2.Start != 0 || g2.End != 2 {
		t.Fatalf("re-lease grant = %+v, ok=%v; want [0,2)", g2, ok)
	}
	if g2.Epoch <= g1.Epoch {
		t.Fatalf("re-lease epoch %d not above %d", g2.Epoch, g1.Epoch)
	}

	// The dead runner comes back and tries to commit: rejected with the
	// epoch it died at, and the hook must not have run.
	err := tbl.Commit(g1.ID, g1.Epoch, 0, []byte("stale"))
	var ee *EpochError
	if !errors.As(err, &ee) || ee.Reason != "expired" {
		t.Fatalf("commit after re-lease = %v, want expired *EpochError", err)
	}
	if rec.count(0) != 0 {
		t.Fatal("stale commit reached the commit hook")
	}

	// The new holder commits normally.
	if err := tbl.Commit(g2.ID, g2.Epoch, 0, []byte("fresh")); err != nil {
		t.Fatalf("new holder commit: %v", err)
	}
	// Once the slot is durable, even the dead lease's retry is acknowledged
	// (the payload is byte-identical by construction, and the first commit
	// already holds).
	if err := tbl.Commit(g1.ID, g1.Epoch, 0, []byte("stale")); err != nil {
		t.Fatalf("stale retry of a committed slot = %v, want idempotent nil", err)
	}
	if rec.count(0) != 1 {
		t.Fatalf("commit hook ran %d times for slot 0, want 1", rec.count(0))
	}
}

func TestDoubleCommitIdempotent(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(3, 3, clock, rec)
	g, _ := tbl.Acquire("r1")
	for i := 0; i < 3; i++ { // the whole range, three times over
		for s := g.Start; s < g.End; s++ {
			if err := tbl.Commit(g.ID, g.Epoch, s, []byte("p")); err != nil {
				t.Fatalf("commit round %d slot %d: %v", i, s, err)
			}
		}
	}
	for s := 0; s < 3; s++ {
		if rec.count(s) != 1 {
			t.Fatalf("slot %d hit the commit hook %d times, want exactly 1", s, rec.count(s))
		}
	}
}

func TestStaleEpochRejected(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(2, 2, clock, rec)
	g, _ := tbl.Acquire("r1")
	_, err := tbl.Renew(g.ID, g.Epoch+7)
	var ee *EpochError
	if !errors.As(err, &ee) || ee.Reason != "stale-epoch" || ee.Current != g.Epoch {
		t.Fatalf("renew with wrong epoch = %v, want stale-epoch naming %d", err, g.Epoch)
	}
	if err := tbl.Commit(g.ID, g.Epoch+7, 0, nil); !errors.As(err, &ee) {
		t.Fatalf("commit with wrong epoch = %v, want *EpochError", err)
	}
	if _, err := tbl.Renew("l-999", 1); !errors.As(err, &ee) || ee.Reason != "unknown" {
		t.Fatalf("renew of unknown lease = %v, want unknown *EpochError", err)
	}
}

func TestWorkStealingSplitsStraggler(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(8, 8, clock, rec)

	// r1 grabs the whole grid and commits only the first slot.
	g1, _ := tbl.Acquire("r1")
	if g1.Start != 0 || g1.End != 8 {
		t.Fatalf("g1 = %+v, want [0,8)", g1)
	}
	if err := tbl.Commit(g1.ID, g1.Epoch, 0, []byte("p")); err != nil {
		t.Fatal(err)
	}

	// r2 arrives with nothing free: it must steal the back half of r1's
	// uncommitted slots (1..7 → thief gets [4,8)).
	g2, ok := tbl.Acquire("r2")
	if !ok || !g2.Stolen {
		t.Fatalf("g2 = %+v, ok=%v; want a stolen grant", g2, ok)
	}
	if g2.Start != 4 || g2.End != 8 {
		t.Fatalf("stolen window = [%d,%d), want [4,8)", g2.Start, g2.End)
	}

	// The straggler can still commit its remaining front window...
	for s := 1; s < 4; s++ {
		if err := tbl.Commit(g1.ID, g1.Epoch, s, []byte("p")); err != nil {
			t.Fatalf("straggler commit slot %d: %v", s, err)
		}
	}
	// ...but a stolen slot is refused with NotHeldError so it skips ahead.
	var nh *NotHeldError
	if err := tbl.Commit(g1.ID, g1.Epoch, 5, []byte("p")); !errors.As(err, &nh) || nh.Slot != 5 {
		t.Fatalf("straggler commit of stolen slot = %v, want *NotHeldError slot 5", err)
	}
	// The thief finishes the back half.
	for s := g2.Start; s < g2.End; s++ {
		if err := tbl.Commit(g2.ID, g2.Epoch, s, []byte("p")); err != nil {
			t.Fatalf("thief commit slot %d: %v", s, err)
		}
	}
	select {
	case <-tbl.Done():
	default:
		t.Fatal("table not done")
	}
}

func TestStealRequiresTwoUncommitted(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(2, 2, clock, rec)
	g1, _ := tbl.Acquire("r1")
	if err := tbl.Commit(g1.ID, g1.Epoch, 0, []byte("p")); err != nil {
		t.Fatal(err)
	}
	// One uncommitted slot left on the only lease: nothing to steal.
	if g2, ok := tbl.Acquire("r2"); ok {
		t.Fatalf("acquire on a 1-slot straggler granted %+v, want no work", g2)
	}
}

func TestMarkCommittedAndDoneGrants(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(4, 4, clock, rec)
	tbl.MarkCommitted(1)
	tbl.MarkCommitted(1) // idempotent
	g, ok := tbl.Acquire("r1")
	if !ok {
		t.Fatal("no grant")
	}
	// Slot 1 sits inside the granted window but is already done.
	if g.Start != 0 || g.End != 4 || len(g.Done) != 1 || g.Done[0] != 1 {
		t.Fatalf("grant = %+v, want [0,4) with Done=[1]", g)
	}
	for _, s := range []int{0, 2, 3} {
		if err := tbl.Commit(g.ID, g.Epoch, s, []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-tbl.Done():
	default:
		t.Fatal("table not done")
	}
	if rec.count(1) != 0 {
		t.Fatal("restored slot reached the commit hook")
	}
}

func TestCommitLocalRevokesHolder(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(2, 2, clock, rec)
	g, _ := tbl.Acquire("r1")
	if err := tbl.CommitLocal(0, []byte("p")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CommitLocal(0, []byte("p")); err != nil { // idempotent
		t.Fatal(err)
	}
	if rec.count(0) != 1 {
		t.Fatalf("slot 0 hook count = %d, want 1", rec.count(0))
	}
	// The nominal holder's own commit of that slot is acknowledged (it is
	// durable), and its other slot still commits normally.
	if err := tbl.Commit(g.ID, g.Epoch, 0, []byte("p")); err != nil {
		t.Fatalf("holder commit of locally committed slot = %v", err)
	}
	if err := tbl.Commit(g.ID, g.Epoch, 1, []byte("p")); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Uncommitted()) != 0 {
		t.Fatal("slots left uncommitted")
	}
}

func TestCommitHookErrorLeavesSlotUncommitted(t *testing.T) {
	clock := newFakeClock()
	fail := true
	tbl := New(1, Options{
		TTL: time.Second, Chunk: 1, Now: clock.Now,
		Commit: func(slot int, payload []byte) error {
			if fail {
				return errors.New("disk full")
			}
			return nil
		},
	})
	g, _ := tbl.Acquire("r1")
	if err := tbl.Commit(g.ID, g.Epoch, 0, []byte("p")); err == nil {
		t.Fatal("commit with failing hook succeeded")
	}
	if tbl.Committed(0) {
		t.Fatal("slot marked committed despite hook failure")
	}
	fail = false
	if err := tbl.Commit(g.ID, g.Epoch, 0, []byte("p")); err != nil {
		t.Fatalf("retry after hook recovery: %v", err)
	}
}

func TestSnapshotCounts(t *testing.T) {
	clock, rec := newFakeClock(), newRecorder()
	tbl := newTestTable(6, 2, clock, rec)
	tbl.MarkCommitted(5)
	g, _ := tbl.Acquire("r1")
	if err := tbl.Commit(g.ID, g.Epoch, g.Start, []byte("p")); err != nil {
		t.Fatal(err)
	}
	st := tbl.Snapshot()
	want := Stats{Slots: 6, Committed: 2, Leased: 1, Free: 3, Live: 1}
	if st != want {
		t.Fatalf("snapshot = %+v, want %+v", st, want)
	}
}

// TestConcurrentRunners hammers one table from many goroutines acting as
// runners, with expiry racing commits, and checks every slot commits
// exactly once — the invariant the race detector gate leans on.
func TestConcurrentRunners(t *testing.T) {
	const n = 64
	rec := newRecorder()
	tbl := New(n, Options{TTL: 5 * time.Millisecond, Chunk: 3, Commit: rec.commit})

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			name := fmt.Sprintf("r%d", r)
			for {
				select {
				case <-tbl.Done():
					return
				default:
				}
				g, ok := tbl.Acquire(name)
				if !ok {
					time.Sleep(time.Millisecond)
					continue
				}
				done := map[int]bool{}
				for _, s := range g.Done {
					done[s] = true
				}
				for s := g.Start; s < g.End; s++ {
					if done[s] {
						continue
					}
					if r%3 == 0 {
						time.Sleep(2 * time.Millisecond) // straggle: invite steals + expiry
					}
					err := tbl.Commit(g.ID, g.Epoch, s, []byte("p"))
					var ee *EpochError
					if errors.As(err, &ee) {
						break // lease lost; abandon the window
					}
					var nh *NotHeldError
					if errors.As(err, &nh) {
						continue // stolen; skip
					}
					if err != nil {
						t.Errorf("commit: %v", err)
						return
					}
				}
				tbl.ExpireDead()
			}
		}(r)
	}
	wg.Wait()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.calls) != n {
		t.Fatalf("committed %d distinct slots, want %d", len(rec.calls), n)
	}
	for s, c := range rec.calls {
		if c != 1 {
			t.Fatalf("slot %d committed %d times", s, c)
		}
	}
}

func TestOnExpireSeesLazyAndSweptExpiry(t *testing.T) {
	clk := newFakeClock()
	var seen []string
	tab := New(4, Options{
		TTL: time.Second, Chunk: 1, Commit: func(int, []byte) error { return nil },
		OnExpire: func(ex Expired) { seen = append(seen, ex.ID) },
		Now:      clk.Now,
	})
	g1, _ := tab.Acquire("r1")
	clk.Advance(2 * time.Second)
	// Lazy path: the next Acquire trips the expiry before granting.
	g2, ok := tab.Acquire("r2")
	if !ok || g2.Start != g1.Start {
		t.Fatalf("expected re-lease of %d, got %+v ok=%v", g1.Start, g2, ok)
	}
	if len(seen) != 1 || seen[0] != g1.ID {
		t.Fatalf("OnExpire saw %v, want [%s] from the lazy path", seen, g1.ID)
	}
	// Swept path: nobody touches the table, ExpireDead finds it.
	clk.Advance(2 * time.Second)
	tab.ExpireDead()
	if len(seen) != 2 || seen[1] != g2.ID {
		t.Fatalf("OnExpire saw %v, want %s appended by the sweep", seen, g2.ID)
	}
}
