package maxcut

import (
	"fmt"
	"math"

	"mcopt/internal/rng"
	"mcopt/problem"
)

// Registry definition: the spec reuses the generic graph fields — Cells as
// vertices, Nets as edges — so a maxcut job needs nothing the service
// doesn't already persist and fingerprint. Defaults are a modest
// G-set-style instance.

func init() {
	problem.Register(problem.Definition{
		Kind: "maxcut",
		Normalize: func(p *problem.Spec) {
			if p.Cells == 0 {
				p.Cells = 64
			}
			if p.Nets == 0 {
				p.Nets = min(4*p.Cells, p.Cells*(p.Cells-1)/2)
			}
		},
		Validate: func(p *problem.Spec) error {
			if p.Cells < 2 || p.Cells > MaxVertices {
				return fmt.Errorf("maxcut: cells (vertices) %d out of range [2,%d]", p.Cells, MaxVertices)
			}
			if p.Nets < 1 || p.Nets > p.Cells*(p.Cells-1)/2 {
				return fmt.Errorf("maxcut: nets (edges) %d out of range [1,%d] for %d vertices", p.Nets, p.Cells*(p.Cells-1)/2, p.Cells)
			}
			return nil
		},
		Compile: func(p *problem.Spec, jobSeed uint64) (*problem.Instance, error) {
			g := Random(rng.Stream("service/maxcut", p.Seed), p.Cells, p.Nets)
			sample := RandomCut(g, rng.Stream("service/maxcut/scale", p.Seed))
			return &problem.Instance{
				Desc: fmt.Sprintf("maxcut (%d vertices, %d edges)", g.N(), g.M()),
				// Deltas are small integers (±1 edge weights), the same
				// regime as the density and cut-size objectives.
				Scale: problem.Scale{TypicalCost: math.Max(float64(g.PositiveWeight()-sample.Weight()), 1), TypicalDelta: 2},
				NewSolution: func(run int) problem.Solution {
					return NewSolution(RandomCut(g, rng.Derive("service/maxcut/start", jobSeed, uint64(run))))
				},
				Encode: func(best problem.Solution) []int {
					return best.(*Solution).Cut().Sides()
				},
			}, nil
		},
	})
}
