package maxcut_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcopt/internal/maxcut"
	"mcopt/internal/rng"
	"mcopt/internal/service"
)

// These tests are the plugin-architecture acceptance gate: a max-cut job
// flows through mcoptd's whole lifecycle — submit, NDJSON event stream,
// result envelope, interrupted-and-resumed byte identity — while
// internal/service contains no max-cut code at all. Everything the service
// knows about the kind arrives through this package's init registration.

const maxcutSpec = `{"problem":{"kind":"maxcut","cells":48,"nets":180,"seed":2},"budget":8000,"runs":3,"seed":5}`

func startServer(t *testing.T, dir string) (*service.Manager, *httptest.Server) {
	t.Helper()
	m, err := service.Open(service.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(m, service.HandlerConfig{}))
	return m, ts
}

func stopServer(t *testing.T, m *service.Manager, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
}

func submitJob(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var ack struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	return ack.ID
}

func waitDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done":
			return
		case "failed", "cancelled":
			t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	return body
}

// TestServiceEndToEnd submits a max-cut job over the HTTP API, watches its
// NDJSON event stream, and checks the result envelope: per-replica stats, a
// best replica, and a side encoding whose cut weight matches the reported
// best cost when re-scored against the same deterministic instance.
func TestServiceEndToEnd(t *testing.T) {
	m, ts := startServer(t, t.TempDir())
	defer stopServer(t, m, ts)

	id := submitJob(t, ts, maxcutSpec)

	// Stream events while the job runs; the stream ends when the job does.
	streamCtx, cancelStream := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelStream()
	req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	states := 0
	kinds := map[string]bool{}
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Type  string `json:"type"`
			Event *struct {
				Kind string `json:"kind"`
			} `json:"event"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch rec.Type {
		case "state":
			states++
		case "event":
			kinds[rec.Event.Kind] = true
		default:
			t.Fatalf("unknown record type %q in %q", rec.Type, line)
		}
	}
	if states == 0 {
		t.Fatal("event stream delivered no state transitions")
	}
	if !kinds["start"] || !kinds["end"] {
		t.Fatalf("stream missing run skeleton, got kinds %v", kinds)
	}

	waitDone(t, ts, id)
	var res struct {
		Problem string `json:"problem"`
		Runs    []struct {
			Run      int   `json:"run"`
			Solution []int `json:"solution"`
		} `json:"runs"`
		BestRun      int     `json:"best_run"`
		BestCost     float64 `json:"best_cost"`
		BestSolution []int   `json:"best_solution"`
	}
	if err := json.Unmarshal(fetchResult(t, ts, id), &res); err != nil {
		t.Fatal(err)
	}
	if res.Problem != "maxcut (48 vertices, 180 edges)" {
		t.Fatalf("problem description %q", res.Problem)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("%d runs, want 3", len(res.Runs))
	}

	// Re-score the winning side assignment against an independently built
	// copy of the instance the spec pins (problem seed 2, the registry's
	// frozen generator stream).
	g := maxcut.Random(rng.Stream("service/maxcut", 2), 48, 180)
	c, err := maxcut.NewCut(g, res.BestSolution)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(g.PositiveWeight() - c.Weight()); got != res.BestCost {
		t.Fatalf("re-scored best solution costs %v, envelope says %v", got, res.BestCost)
	}
}

// TestServiceResumeByteIdentical interrupts a max-cut job mid-grid by
// draining the server, restarts over the same data directory, and requires
// the resumed result artifact to be byte-identical to an uninterrupted run
// — the same durability contract the built-in kinds carry, inherited by a
// plugin with zero extra code.
func TestServiceResumeByteIdentical(t *testing.T) {
	// A spec long enough to straddle a drain: few replicas, big budget.
	spec := `{"problem":{"kind":"maxcut","cells":64,"nets":256,"seed":3},"budget":3000000,"runs":4,"seed":9}`

	goldenM, goldenTS := startServer(t, t.TempDir())
	defer stopServer(t, goldenM, goldenTS)
	goldenID := submitJob(t, goldenTS, spec)
	waitDone(t, goldenTS, goldenID)
	golden := fetchResult(t, goldenTS, goldenID)

	dir := t.TempDir()
	m1, ts1 := startServer(t, dir)
	id := submitJob(t, ts1, spec)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts1.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			DoneRuns int    `json:"done_runs"`
			State    string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.DoneRuns >= 1 || st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress before drain")
		}
		time.Sleep(time.Millisecond)
	}
	stopServer(t, m1, ts1)

	m2, ts2 := startServer(t, dir)
	defer stopServer(t, m2, ts2)
	waitDone(t, ts2, id)
	resumed := fetchResult(t, ts2, id)
	if !bytes.Equal(resumed, golden) {
		t.Fatalf("resumed max-cut result differs from uninterrupted run (%d vs %d bytes)", len(resumed), len(golden))
	}
}
