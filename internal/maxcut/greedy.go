package maxcut

// Greedy builds a deterministic side assignment by sweeping vertices in
// index order and placing each on the side that maximizes the crossing
// weight against its already-placed neighbors (ties break toward side 0).
// It is the classic 1/2-approximation constructive, the "proven heuristic"
// baseline the X3 comparison pits against annealing.
func Greedy(g *Instance) []int {
	sides := make([]int, g.n)
	placed := make([]bool, g.n)
	for v := 0; v < g.n; v++ {
		// cut0/cut1: crossing weight contributed by v's placed neighbors if
		// v lands on side 0 / side 1.
		var cut0, cut1 int64
		for _, h := range g.adj[v] {
			u := int(h.to)
			if !placed[u] {
				continue
			}
			if sides[u] == 0 {
				cut1 += int64(h.w)
			} else {
				cut0 += int64(h.w)
			}
		}
		if cut1 > cut0 {
			sides[v] = 1
		}
		placed[v] = true
	}
	return sides
}
