package maxcut

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format mirrors the netlist one: line-oriented, comments and
// blank lines ignored, round-tripping exactly through Write/Read.
//
//	# optional comments
//	vertices 5
//	edge 0 1 1
//	edge 1 2 -1
//
// "vertices" must appear before the first "edge"; weights are signed
// integers. The G-set corpus translates line-for-line (its 1-based "u v w"
// rows become 0-based edge lines).

// Write serializes the instance in the text format.
func Write(w io.Writer, g *Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "vertices %d\n", g.n)
	for _, e := range g.edges {
		fmt.Fprintf(bw, "edge %d %d %d\n", e.U, e.V, e.W)
	}
	return bw.Flush()
}

// Read parses the text format and validates the instance.
func Read(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := -1
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "vertices":
			if n >= 0 {
				return nil, fmt.Errorf("maxcut: line %d: duplicate vertices line", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("maxcut: line %d: want \"vertices N\"", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 || v > MaxVertices {
				return nil, fmt.Errorf("maxcut: line %d: bad vertex count %q", line, fields[1])
			}
			n = v
		case "edge":
			if n < 0 {
				return nil, fmt.Errorf("maxcut: line %d: edge before vertices", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("maxcut: line %d: want \"edge U V W\"", line)
			}
			var nums [3]int
			for i, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("maxcut: line %d: bad number %q", line, f)
				}
				nums[i] = v
			}
			edges = append(edges, Edge{U: nums[0], V: nums[1], W: nums[2]})
		default:
			return nil, fmt.Errorf("maxcut: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("maxcut: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("maxcut: missing vertices line")
	}
	return New(n, edges)
}
