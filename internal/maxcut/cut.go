package maxcut

import (
	"fmt"
	"math/rand/v2"
)

// Cut is a two-sided vertex assignment over an Instance with an
// incrementally maintained cut weight. Sides are stored as a bitset (one
// bit per vertex), so state is n/8 bytes and a clone is a few word copies
// per 64 vertices; the weight is updated in O(degree) per flip and never
// recomputed from scratch outside tests.
type Cut struct {
	g    *Instance
	side []uint64 // bit v = side of vertex v
	w    int64    // maintained cut weight: sum of weights of crossing edges
	// seq invalidates outstanding proposed moves whenever the state
	// mutates, the same staleness discipline the other domains use.
	seq uint64
}

// NewCut builds a cut from an explicit side assignment (values 0 or 1,
// one per vertex).
func NewCut(g *Instance, sides []int) (*Cut, error) {
	if len(sides) != g.n {
		return nil, fmt.Errorf("maxcut: %d sides for %d vertices", len(sides), g.n)
	}
	c := &Cut{g: g, side: make([]uint64, (g.n+63)/64)}
	for v, s := range sides {
		switch s {
		case 0:
		case 1:
			c.side[v>>6] |= 1 << (v & 63)
		default:
			return nil, fmt.Errorf("maxcut: side[%d] = %d, want 0 or 1", v, s)
		}
	}
	c.w = c.computeWeight()
	return c, nil
}

// RandomCut assigns each vertex a uniform random side.
func RandomCut(g *Instance, r *rand.Rand) *Cut {
	c := &Cut{g: g, side: make([]uint64, (g.n+63)/64)}
	for i := range c.side {
		c.side[i] = r.Uint64()
	}
	// Mask the tail so Clone/compare semantics are exact.
	if rem := g.n & 63; rem != 0 && len(c.side) > 0 {
		c.side[len(c.side)-1] &= (1 << rem) - 1
	}
	c.w = c.computeWeight()
	return c
}

// Instance returns the underlying graph.
func (c *Cut) Instance() *Instance { return c.g }

// Side returns vertex v's side, 0 or 1.
func (c *Cut) Side(v int) int { return int(c.side[v>>6]>>(v&63)) & 1 }

// Sides returns the full assignment as a fresh slice of 0/1 values.
func (c *Cut) Sides() []int {
	out := make([]int, c.g.n)
	for v := range out {
		out[v] = c.Side(v)
	}
	return out
}

// Weight returns the maintained cut weight.
func (c *Cut) Weight() int64 { return c.w }

// FlipDelta returns the cut-weight change of flipping vertex v to the
// other side, in O(degree): edges to same-side neighbors enter the cut,
// edges to opposite-side neighbors leave it.
func (c *Cut) FlipDelta(v int) int64 {
	sv := c.side[v>>6] >> (v & 63) & 1
	var delta int64
	for _, he := range c.g.adj[v] {
		u := int(he.to)
		if c.side[u>>6]>>(u&63)&1 == sv {
			delta += int64(he.w)
		} else {
			delta -= int64(he.w)
		}
	}
	return delta
}

// Flip moves vertex v to the other side, updating the weight in
// O(degree).
func (c *Cut) Flip(v int) {
	c.w += c.FlipDelta(v)
	c.side[v>>6] ^= 1 << (v & 63)
	c.seq++
}

// Clone returns a deep copy sharing only the immutable instance.
func (c *Cut) Clone() *Cut {
	side := make([]uint64, len(c.side))
	copy(side, c.side)
	return &Cut{g: c.g, side: side, w: c.w}
}

// computeWeight is the O(m) full recomputation — the oracle the
// differential and fuzz tests pit the incremental bookkeeping against.
func (c *Cut) computeWeight() int64 {
	var w int64
	for _, e := range c.g.edges {
		if c.Side(e.U) != c.Side(e.V) {
			w += int64(e.W)
		}
	}
	return w
}
