package maxcut

import (
	"bytes"
	"strings"
	"testing"

	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/rng"
)

func testGraph(t *testing.T) *Instance {
	t.Helper()
	return MustNew(5, []Edge{
		{0, 1, 1}, {1, 2, -1}, {2, 3, 1}, {3, 4, 1}, {4, 0, 1}, {0, 3, -1},
	})
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"zero vertices", 0, nil},
		{"too many vertices", MaxVertices + 1, nil},
		{"endpoint out of range", 3, []Edge{{0, 3, 1}}},
		{"negative endpoint", 3, []Edge{{-1, 2, 1}}},
		{"self loop", 3, []Edge{{1, 1, 1}}},
	}
	for _, c := range cases {
		if _, err := New(c.n, c.edges); err == nil {
			t.Errorf("%s: New accepted invalid input", c.name)
		}
	}
	if _, err := New(2, []Edge{{0, 1, 7}}); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestRandomProperties(t *testing.T) {
	g := Random(rng.Stream("test/maxcut", 1), 20, 60)
	if g.N() != 20 || g.M() != 60 {
		t.Fatalf("got %d vertices, %d edges, want 20, 60", g.N(), g.M())
	}
	seen := map[[2]int]bool{}
	for _, e := range g.Edges() {
		if e.U == e.V {
			t.Fatalf("self loop %v", e)
		}
		if e.W != 1 && e.W != -1 {
			t.Fatalf("weight %d, want ±1", e.W)
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			t.Fatalf("duplicate edge (%d,%d)", u, v)
		}
		seen[[2]int{u, v}] = true
	}
	// Requesting more edges than the complete graph holds caps cleanly.
	k := Random(rng.Stream("test/maxcut", 2), 4, 100)
	if k.M() != 6 {
		t.Fatalf("overfull request produced %d edges, want 6", k.M())
	}
}

func TestCutWeightMatchesBruteForce(t *testing.T) {
	g := testGraph(t)
	c, err := NewCut(g, []int{0, 1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Crossing edges: (0,1)+1, (1,2)−1, (2,3)+1, (3,4)+1, (0,3)−1 = +1.
	if c.Weight() != 1 {
		t.Fatalf("weight %d, want 1", c.Weight())
	}
	if c.Weight() != c.computeWeight() {
		t.Fatalf("maintained %d vs recomputed %d", c.Weight(), c.computeWeight())
	}
}

func TestNewCutValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := NewCut(g, []int{0, 1}); err == nil {
		t.Fatal("accepted short side slice")
	}
	if _, err := NewCut(g, []int{0, 1, 2, 0, 1}); err == nil {
		t.Fatal("accepted side value 2")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := testGraph(t)
	c := RandomCut(g, rng.Stream("test/clone", 1))
	d := c.Clone()
	before := d.Weight()
	c.Flip(2)
	if d.Weight() != before || d.Side(2) == c.Side(2) && c.FlipDelta(2) == 0 {
		t.Fatal("clone shares state with original")
	}
	if d.Weight() != d.computeWeight() {
		t.Fatal("clone weight inconsistent")
	}
}

func TestSolutionCostAndMoves(t *testing.T) {
	g := testGraph(t)
	c := RandomCut(g, rng.Stream("test/sol", 3))
	s := NewSolution(c)
	if got, want := s.Cost(), float64(g.PositiveWeight()-c.Weight()); got != want {
		t.Fatalf("cost %v, want %v", got, want)
	}
	r := rng.Stream("test/sol/moves", 1)
	for i := 0; i < 50; i++ {
		before := s.Cost()
		m := s.Propose(r)
		delta := m.Delta()
		m.Apply()
		if got := s.Cost() - before; got != delta {
			t.Fatalf("move %d: promised delta %v, observed %v", i, delta, got)
		}
	}
}

func TestStaleMovePanics(t *testing.T) {
	s := NewSolution(RandomCut(testGraph(t), rng.Stream("test/stale", 1)))
	r := rng.Stream("test/stale/moves", 1)
	m := s.Propose(r)
	s.Propose(r).Apply()
	defer func() {
		if recover() == nil {
			t.Fatal("Apply on a stale move did not panic")
		}
	}()
	m.Apply()
}

func TestDescendReachesLocalOptimum(t *testing.T) {
	g := Random(rng.Stream("test/descend", 1), 30, 90)
	s := NewSolution(RandomCut(g, rng.Stream("test/descend/start", 1)))
	if !s.Descend(core.NewBudget(1_000_000)) {
		t.Fatal("budget died before local optimum")
	}
	for v := 0; v < g.N(); v++ {
		if s.Cut().FlipDelta(v) > 0 {
			t.Fatalf("vertex %d still improves after Descend", v)
		}
	}
	// A dead budget is reported honestly.
	s2 := NewSolution(RandomCut(g, rng.Stream("test/descend/start", 2)))
	if s2.Descend(core.NewBudget(3)) {
		t.Fatal("Descend claimed certification on a 3-move budget")
	}
}

func TestEnumerableMatchesPropose(t *testing.T) {
	g := testGraph(t)
	s := NewSolution(RandomCut(g, rng.Stream("test/enum", 1)))
	if s.NeighborhoodSize() != g.N() {
		t.Fatalf("neighborhood %d, want %d", s.NeighborhoodSize(), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if got, want := s.EvalNeighbor(v).Delta(), float64(-s.Cut().FlipDelta(v)); got != want {
			t.Fatalf("neighbor %d: delta %v, want %v", v, got, want)
		}
	}
}

func TestBatchMatchesSerial(t *testing.T) {
	g := Random(rng.Stream("test/batch", 1), 40, 160)
	start := RandomCut(g, rng.Stream("test/batch/start", 1))
	s1, s2 := NewSolution(start.Clone()), NewSolution(start.Clone())
	r1 := rng.Stream("test/batch/run", 7)
	r2 := rng.Stream("test/batch/run", 7)
	deltas := make([]float64, 16)
	s1.ProposeBatch(r1, deltas)
	for i := range deltas {
		if got := s2.Propose(r2).Delta(); got != deltas[i] {
			t.Fatalf("candidate %d: batch delta %v, serial delta %v", i, deltas[i], got)
		}
	}
	s1.ApplyBatch(3)
	if s1.Cut().Weight() != s1.Cut().computeWeight() {
		t.Fatal("ApplyBatch left an inconsistent weight")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyBatch on an invalidated batch did not panic")
		}
	}()
	s1.ApplyBatch(4)
}

// TestEngineImprovesCut runs the real Figure-1 engine with g = 1 and checks
// the search actually raises the cut weight on a nontrivial instance — the
// end-to-end sanity a plugin must pass before it is worth serving.
func TestEngineImprovesCut(t *testing.T) {
	g := Random(rng.Stream("test/engine", 1), 60, 240)
	s := NewSolution(RandomCut(g, rng.Stream("test/engine/start", 1)))
	startW := s.CutWeight()
	res := core.Figure1{G: gfunc.One()}.Run(s, core.NewBudget(20_000), rng.Stream("test/engine/run", 1))
	bestW := res.Best.(*Solution).CutWeight()
	if bestW <= startW {
		t.Fatalf("cut weight did not improve: %d -> %d", startW, bestW)
	}
	if got, want := res.BestCost, float64(g.PositiveWeight()-bestW); got != want {
		t.Fatalf("BestCost %v inconsistent with best cut %d", got, bestW)
	}
}

func TestGreedy(t *testing.T) {
	g := Random(rng.Stream("test/greedy", 1), 50, 200)
	c, err := NewCut(g, Greedy(g))
	if err != nil {
		t.Fatalf("Greedy produced invalid sides: %v", err)
	}
	r := RandomCut(g, rng.Stream("test/greedy/rand", 1))
	if c.Weight() <= r.Weight() {
		t.Fatalf("greedy cut %d not above random cut %d", c.Weight(), r.Weight())
	}
	// With all-nonnegative weights the sweep carries the classic guarantee:
	// each vertex captures at least half its placed incident weight, so the
	// cut is at least half the total weight.
	pos := make([]Edge, 0, g.M())
	for _, e := range g.Edges() {
		e.W = 1
		pos = append(pos, e)
	}
	gp := MustNew(g.N(), pos)
	cp, err := NewCut(gp, Greedy(gp))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Weight()*2 < int64(gp.M()) {
		t.Fatalf("greedy cut %d below the m/2 guarantee (m = %d)", cp.Weight(), gp.M())
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := Random(rng.Stream("test/textio", 1), 12, 30)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	back, err := Read(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := Write(&again, back); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatal("Write/Read/Write did not round-trip")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"edge before vertices", "edge 0 1 1\n"},
		{"bad count", "vertices x\n"},
		{"duplicate header", "vertices 2\nvertices 2\n"},
		{"short edge", "vertices 2\nedge 0 1\n"},
		{"bad weight", "vertices 2\nedge 0 1 w\n"},
		{"unknown directive", "vertices 2\nnet 0 1\n"},
		{"out of range", "vertices 2\nedge 0 2 1\n"},
		{"self loop", "vertices 2\nedge 1 1 1\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: Read accepted %q", c.name, c.text)
		}
	}
	ok := "# comment\n\nvertices 3\nedge 0 1 1\nedge 1 2 -2\n"
	g, err := Read(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid text rejected: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed %d/%d, want 3/2", g.N(), g.M())
	}
}
