package maxcut

import (
	"testing"

	"mcopt/internal/rng"
)

// TestFlipDifferential is the kernel contract: over random graphs and long
// random flip sequences, the incrementally maintained cut weight and every
// O(degree) FlipDelta must agree exactly with the O(m) full recomputation
// oracle at every step.
func TestFlipDifferential(t *testing.T) {
	shapes := []struct{ n, m int }{
		{2, 1}, {5, 6}, {16, 40}, {33, 150}, {64, 400}, {65, 64},
	}
	for _, sh := range shapes {
		g := Random(rng.Derive("diff/graph", 9, uint64(sh.n)), sh.n, sh.m)
		c := RandomCut(g, rng.Derive("diff/start", 9, uint64(sh.n)))
		r := rng.Derive("diff/flips", 9, uint64(sh.n))
		for step := 0; step < 500; step++ {
			v := r.IntN(g.N())
			before := c.Weight()
			delta := c.FlipDelta(v)
			c.Flip(v)
			oracle := c.computeWeight()
			if c.Weight() != oracle {
				t.Fatalf("n=%d m=%d step %d: incremental %d, oracle %d", sh.n, sh.m, step, c.Weight(), oracle)
			}
			if before+delta != oracle {
				t.Fatalf("n=%d m=%d step %d: FlipDelta promised %d, observed %d", sh.n, sh.m, step, delta, oracle-before)
			}
		}
	}
}

// FuzzCutFlip feeds arbitrary bytes as (graph shape, edge weights, flip
// sequence) and cross-checks the incremental weight against the oracle.
// The seed corpus covers the boundary shapes: single edge, bitset word
// boundary, negative weights, dense graphs.
func FuzzCutFlip(f *testing.F) {
	f.Add(uint8(2), uint16(1), []byte{0, 1, 0})
	f.Add(uint8(5), uint16(6), []byte{4, 3, 2, 1, 0, 4})
	f.Add(uint8(64), uint16(100), []byte{63, 0, 63, 31})
	f.Add(uint8(65), uint16(200), []byte{64, 64, 1})
	f.Add(uint8(9), uint16(36), []byte{8, 7, 6, 5})
	f.Fuzz(func(t *testing.T, nRaw uint8, mRaw uint16, flips []byte) {
		n := int(nRaw)
		if n < 2 {
			n = 2
		}
		m := int(mRaw) % (n*(n-1)/2 + 1)
		if m == 0 {
			m = 1
		}
		g := Random(rng.Derive("fuzz/graph", uint64(nRaw), uint64(mRaw)), n, m)
		c := RandomCut(g, rng.Derive("fuzz/start", uint64(nRaw), uint64(mRaw)))
		if c.Weight() != c.computeWeight() {
			t.Fatalf("initial weight %d, oracle %d", c.Weight(), c.computeWeight())
		}
		for i, b := range flips {
			if i >= 200 {
				break
			}
			v := int(b) % g.N()
			before := c.Weight()
			delta := c.FlipDelta(v)
			c.Flip(v)
			if oracle := c.computeWeight(); c.Weight() != oracle || before+delta != oracle {
				t.Fatalf("flip %d (vertex %d): incremental %d, delta-pred %d, oracle %d",
					i, v, c.Weight(), before+delta, oracle)
			}
		}
	})
}
