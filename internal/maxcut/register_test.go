package maxcut_test

import (
	"strings"
	"testing"

	"mcopt/internal/service"
)

// The kind/g and kind/field mismatches involving maxcut are asserted here
// rather than in internal/service's own tests: the service test binary
// deliberately registers only the pre-refactor kinds, proving no maxcut
// code leaks into that layer.

func TestSpecRejectsMaxcutMisuse(t *testing.T) {
	cases := []struct {
		name string
		spec service.JobSpec
		want string
	}{
		{"cohoon on maxcut", service.JobSpec{
			Problem: service.ProblemSpec{Kind: service.KindMaxCut}, G: "[COHO83a]",
		}, "applies only to netlist"},
		{"inline netlist on maxcut", service.JobSpec{
			Problem: service.ProblemSpec{Kind: service.KindMaxCut, Netlist: "cells 2\nnet 0 1\n"},
		}, "inline netlist is not supported"},
		{"edges out of range", service.JobSpec{
			Problem: service.ProblemSpec{Kind: service.KindMaxCut, Cells: 4, Nets: 100},
		}, "out of range"},
		{"too few vertices", service.JobSpec{
			Problem: service.ProblemSpec{Kind: service.KindMaxCut, Cells: 1, Nets: 1},
		}, "out of range"},
	}
	for _, c := range cases {
		c.spec.Normalize()
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestNormalizeDefaults pins the registered kind's defaulting: 64 vertices,
// 4 edges per vertex, capped at the complete graph.
func TestNormalizeDefaults(t *testing.T) {
	s := service.JobSpec{Problem: service.ProblemSpec{Kind: service.KindMaxCut}}
	s.Normalize()
	if s.Problem.Cells != 64 || s.Problem.Nets != 256 {
		t.Fatalf("defaults = %d vertices, %d edges; want 64, 256", s.Problem.Cells, s.Problem.Nets)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted spec rejected: %v", err)
	}
	dense := service.JobSpec{Problem: service.ProblemSpec{Kind: service.KindMaxCut, Cells: 4}}
	dense.Normalize()
	if dense.Problem.Nets != 6 {
		t.Fatalf("dense default %d edges, want the complete graph's 6", dense.Problem.Nets)
	}
}
