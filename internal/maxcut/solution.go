package maxcut

import (
	"math/rand/v2"

	"mcopt/problem"
)

// Solution adapts a Cut to the engines. The engines minimize, so the cost
// is PositiveWeight − Weight: a nonnegative gap to the (unreachable in
// general) all-positive-edges-cut bound, with maximizing the cut and
// minimizing the cost the same search. The perturbation class is a uniform
// random vertex flip.
//
// The adapter implements every optional engine capability — Descender
// (Figure 2), Enumerable (Rejectionless), and BatchEvaluator (batched
// Figure 1 / tempering) — each falling out of the O(degree) flip delta.
type Solution struct {
	c *Cut
	// batch is the most recent ProposeBatch's candidate vertices; valid
	// while batchOK and the cut has not mutated since batchSeq.
	batch    []int32
	batchSeq uint64
	batchOK  bool
}

var (
	_ problem.Solution       = (*Solution)(nil)
	_ problem.Descender      = (*Solution)(nil)
	_ problem.Enumerable     = (*Solution)(nil)
	_ problem.BatchEvaluator = (*Solution)(nil)
)

// NewSolution wraps the cut. The Solution owns it from this point.
func NewSolution(c *Cut) *Solution { return &Solution{c: c} }

// Cut exposes the underlying state, e.g. to read the final sides.
func (s *Solution) Cut() *Cut { return s.c }

// Cost returns PositiveWeight − Weight (≥ 0; zero iff every positive edge
// crosses and no negative edge does).
func (s *Solution) Cost() float64 { return float64(s.c.g.posW - s.c.w) }

// CutWeight returns the current cut weight as an exact integer.
func (s *Solution) CutWeight() int64 { return s.c.w }

// flipMove is a proposed, not-yet-applied vertex flip.
type flipMove struct {
	c *Cut
	v int
	// deltaCut is the cut-weight gain; the engine-facing cost delta is its
	// negation.
	deltaCut int64
	seq      uint64
}

func (m *flipMove) Delta() float64 { return float64(-m.deltaCut) }

func (m *flipMove) Apply() {
	if m.seq != m.c.seq {
		panic("maxcut: Apply on a stale flip move")
	}
	m.c.Flip(m.v)
}

// Propose draws a uniform random vertex flip.
func (s *Solution) Propose(r *rand.Rand) problem.Move {
	s.batchOK = false
	v := r.IntN(s.c.g.n)
	return &flipMove{c: s.c, v: v, deltaCut: s.c.FlipDelta(v), seq: s.c.seq}
}

// Clone returns a deep copy.
func (s *Solution) Clone() problem.Solution { return &Solution{c: s.c.Clone()} }

// Descend flips any cut-improving vertex in first-improvement sweeps until
// the assignment is 1-flip optimal, charging one budget unit per evaluated
// flip. It returns false if the budget died before a local optimum was
// certified.
func (s *Solution) Descend(budget *problem.Budget) bool {
	s.batchOK = false
	c := s.c
	for {
		improved := false
		for v := 0; v < c.g.n; v++ {
			if !budget.TrySpend() {
				return false
			}
			if c.FlipDelta(v) > 0 {
				c.Flip(v)
				improved = true
			}
		}
		if !improved {
			return true
		}
	}
}

// NeighborhoodSize returns the number of distinct flips: one per vertex.
func (s *Solution) NeighborhoodSize() int { return s.c.g.n }

// EvalNeighbor evaluates the flip of vertex idx.
func (s *Solution) EvalNeighbor(idx int) problem.Move {
	if idx < 0 || idx >= s.c.g.n {
		panic("maxcut: EvalNeighbor index out of range")
	}
	s.batchOK = false
	return &flipMove{c: s.c, v: idx, deltaCut: s.c.FlipDelta(idx), seq: s.c.seq}
}

// ProposeBatch draws len(deltas) candidate flips — the same draw recipe,
// in the same order, as that many consecutive Propose calls — and fills
// deltas with each candidate's cost change against the committed state.
func (s *Solution) ProposeBatch(r *rand.Rand, deltas []float64) {
	if cap(s.batch) < len(deltas) {
		s.batch = make([]int32, len(deltas))
	}
	s.batch = s.batch[:len(deltas)]
	for i := range deltas {
		v := r.IntN(s.c.g.n)
		s.batch[i] = int32(v)
		deltas[i] = float64(-s.c.FlipDelta(v))
	}
	s.batchSeq = s.c.seq
	s.batchOK = true
}

// ApplyBatch commits candidate i of the most recent ProposeBatch and
// invalidates the rest of the batch.
func (s *Solution) ApplyBatch(i int) {
	if !s.batchOK || s.batchSeq != s.c.seq {
		panic("maxcut: ApplyBatch on a stale batch")
	}
	if i < 0 || i >= len(s.batch) {
		panic("maxcut: ApplyBatch index out of range")
	}
	s.batchOK = false
	s.c.Flip(int(s.batch[i]))
}
