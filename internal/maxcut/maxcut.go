// Package maxcut implements the weighted maximum-cut problem of Myklebust,
// "Solving maximum cut problems by simulated annealing": partition a
// weighted graph's vertices into two sides so that the total weight of
// edges crossing the partition is maximal.
//
// The package is the library's first registry-era domain — written as an
// external plugin would be, against mcopt/problem only — and doubles as
// the worked example in the README's "Adding a problem" walkthrough. State
// is a bitset side assignment with an incrementally maintained cut weight;
// the single perturbation class is a vertex flip, whose exact cost change
// is computed in O(degree) from the flipped vertex's adjacency alone.
package maxcut

import (
	"fmt"
	"math/rand/v2"
)

// MaxVertices bounds instance sizes accepted by New and the text parser,
// protecting generators and the service from resource exhaustion on
// malformed input.
const MaxVertices = 1 << 22

// Edge is one weighted undirected edge. Self-loops are rejected (they can
// never cross a cut); parallel edges are allowed and act additively.
type Edge struct {
	U, V int
	// W is the edge weight. G-set-style instances use ±1; any int that
	// cannot overflow an int64 total is accepted.
	W int
}

// halfEdge is one direction of an edge in the adjacency index.
type halfEdge struct {
	to int32
	w  int32
}

// Instance is an immutable weighted graph.
type Instance struct {
	n     int
	edges []Edge
	adj   [][]halfEdge
	// posW is the total positive edge weight — an upper bound on any cut's
	// weight, used to present max-cut as minimization (see Solution).
	posW int64
}

// New builds a validated instance over vertices 0..n-1.
func New(n int, edges []Edge) (*Instance, error) {
	if n < 1 || n > MaxVertices {
		return nil, fmt.Errorf("maxcut: vertex count %d out of range [1,%d]", n, MaxVertices)
	}
	g := &Instance{n: n, edges: make([]Edge, len(edges)), adj: make([][]halfEdge, n)}
	copy(g.edges, edges)
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("maxcut: edge %d (%d,%d) outside vertex range [0,%d)", i, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("maxcut: edge %d is a self-loop on vertex %d", i, e.U)
		}
		if int(int32(e.W)) != e.W {
			return nil, fmt.Errorf("maxcut: edge %d weight %d overflows int32", i, e.W)
		}
		g.adj[e.U] = append(g.adj[e.U], halfEdge{to: int32(e.V), w: int32(e.W)})
		g.adj[e.V] = append(g.adj[e.V], halfEdge{to: int32(e.U), w: int32(e.W)})
		if e.W > 0 {
			g.posW += int64(e.W)
		}
	}
	return g, nil
}

// MustNew is New, panicking on error; for programmatic instances.
func MustNew(n int, edges []Edge) *Instance {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Random generates a G-set-style instance: m distinct uniform edges over n
// vertices, each weighted +1 or −1 with equal probability. m is capped at
// the complete graph's edge count.
func Random(r *rand.Rand, n, m int) *Instance {
	if n < 2 {
		n = 2
	}
	if maxM := n * (n - 1) / 2; m > maxM {
		m = maxM
	}
	seen := make(map[[2]int32]struct{}, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u, v := r.IntN(n), r.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int32{int32(u), int32(v)}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		w := 1
		if r.IntN(2) == 1 {
			w = -1
		}
		edges = append(edges, Edge{U: u, V: v, W: w})
	}
	g, err := New(n, edges)
	if err != nil {
		panic(err) // unreachable: generated edges are valid by construction
	}
	return g
}

// N returns the vertex count.
func (g *Instance) N() int { return g.n }

// M returns the edge count.
func (g *Instance) M() int { return len(g.edges) }

// Edges returns the edge list. Callers must not mutate it.
func (g *Instance) Edges() []Edge { return g.edges }

// PositiveWeight returns the total positive edge weight, the cut-weight
// upper bound the minimization framing subtracts from.
func (g *Instance) PositiveWeight() int64 { return g.posW }

// Degree returns vertex v's incident edge count.
func (g *Instance) Degree(v int) int { return len(g.adj[v]) }
