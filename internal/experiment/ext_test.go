package experiment

import (
	"strconv"
	"testing"

	"mcopt/internal/sched"
)

// cellInt parses an integer cell from a rendered row.
func cellInt(t *testing.T, row TableRow, col int) int {
	t.Helper()
	v, err := strconv.Atoi(row.Cells[col])
	if err != nil {
		t.Fatalf("row %q cell %d = %q: %v", row.Label, col, row.Cells[col], err)
	}
	return v
}

func TestPartitionComparisonShape(t *testing.T) {
	tab, _ := PartitionComparison(1, 4, 32, 96, 8000, sched.Options{})
	if len(tab.Rows) != 7 {
		t.Fatalf("X1 has %d rows, want 7", len(tab.Rows))
	}
	byName := map[string]TableRow{}
	for _, r := range tab.Rows {
		byName[r.Label] = r
		if red := cellInt(t, r, 1); red < 0 {
			t.Fatalf("%s has negative reduction %d", r.Label, red)
		}
	}
	kl, ok := byName["Kernighan-Lin"]
	if !ok {
		t.Fatal("KL row missing")
	}
	sa := byName["Six Temperature Annealing"]
	// The paper's §2 point: the proven heuristic is at least competitive
	// with annealing at equal budgets. Allow a small slack for suite noise.
	if cellInt(t, kl, 0) > cellInt(t, sa, 0)+cellInt(t, sa, 0)/10 {
		t.Fatalf("KL cut sum %s far above annealing %s", kl.Cells[0], sa.Cells[0])
	}
}

func TestTSPComparisonShape(t *testing.T) {
	tab, _ := TSPComparison(1, 5, 40, 15000, sched.Options{})
	if len(tab.Rows) != 6 {
		t.Fatalf("X2 has %d rows, want 6", len(tab.Rows))
	}
	byName := map[string]TableRow{}
	for _, r := range tab.Rows {
		byName[r.Label] = r
	}
	sa := cellInt(t, byName["Six Temperature Annealing"], 0)
	lin := cellInt(t, byName["2-opt restarts [LIN73]"], 0)
	hull := cellInt(t, byName["Hull insertion [STEW77]"], 0)
	// [GOLD84]'s findings, which the paper recounts: 2-opt with equal time
	// and the Stewart-style constructive both dominate annealing.
	if lin >= sa {
		t.Fatalf("2-opt restarts (%d) did not beat annealing (%d)", lin, sa)
	}
	if hull >= sa {
		t.Fatalf("hull insertion (%d) did not beat annealing (%d)", hull, sa)
	}
	wins := cellInt(t, byName["2-opt restarts [LIN73]"], 1)
	if wins < 4 {
		t.Fatalf("2-opt restarts won only %d/5 instances vs annealing", wins)
	}
}

func TestMaxCutComparisonShape(t *testing.T) {
	tab, _ := MaxCutComparison(1, 4, 48, 144, 8000, sched.Options{})
	if len(tab.Rows) != 7 {
		t.Fatalf("X3 has %d rows, want 7", len(tab.Rows))
	}
	byName := map[string]TableRow{}
	for _, r := range tab.Rows {
		byName[r.Label] = r
	}
	// Descent never moves below its start, so the gain column is nonnegative.
	if g := cellInt(t, byName["Local search (1 descent)"], 1); g < 0 {
		t.Fatalf("descent reported negative gain %d", g)
	}
	// Refining the greedy construction cannot lose cut weight.
	greedy := cellInt(t, byName["Greedy construction"], 0)
	refined := cellInt(t, byName["Greedy + descent"], 0)
	if refined < greedy {
		t.Fatalf("descent worsened greedy: %d -> %d", greedy, refined)
	}
	// Annealing should clear the random starting cuts by a wide margin.
	if g := cellInt(t, byName["Six Temperature Annealing"], 1); g <= 0 {
		t.Fatalf("annealing gained nothing over random cuts (%d)", g)
	}
}

func TestExtDeterministic(t *testing.T) {
	a, _ := TSPComparison(3, 3, 30, 5000, sched.Options{})
	b, _ := TSPComparison(3, 3, 30, 5000, sched.Options{})
	if a.String() != b.String() {
		t.Fatal("TSP comparison not deterministic")
	}
	c, _ := PartitionComparison(3, 3, 24, 72, 4000, sched.Options{})
	d, _ := PartitionComparison(3, 3, 24, 72, 4000, sched.Options{})
	if c.String() != d.String() {
		t.Fatal("partition comparison not deterministic")
	}
	e, _ := MaxCutComparison(3, 3, 32, 96, 4000, sched.Options{})
	f, _ := MaxCutComparison(3, 3, 32, 96, 4000, sched.Options{})
	if e.String() != f.String() {
		t.Fatal("max-cut comparison not deterministic")
	}
}

func TestPMedianComparisonShape(t *testing.T) {
	tab, _ := PMedianComparison(1, 4, 30, 4, 8000, sched.Options{})
	if len(tab.Rows) != 6 {
		t.Fatalf("X2b has %d rows, want 6", len(tab.Rows))
	}
	byName := map[string]TableRow{}
	for _, r := range tab.Rows {
		byName[r.Label] = r
		if c := cellInt(t, r, 0); c <= 0 {
			t.Fatalf("%s: non-positive cost sum %d", r.Label, c)
		}
	}
	sa := cellInt(t, byName["Six Temperature Annealing"], 0)
	inter := cellInt(t, byName["Interchange restarts [Teitz-Bart]"], 0)
	// [GOLD84] shape: the specialized heuristic is at least competitive.
	if float64(inter) > 1.05*float64(sa) {
		t.Fatalf("interchange restarts (%d) far above annealing (%d)", inter, sa)
	}
	// The pure construction is improvable by local search.
	greedy := cellInt(t, byName["Greedy construction"], 0)
	refined := cellInt(t, byName["Greedy + interchange"], 0)
	if refined > greedy {
		t.Fatalf("interchange worsened greedy: %d -> %d", greedy, refined)
	}
}
