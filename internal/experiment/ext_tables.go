package experiment

import (
	"fmt"

	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/netlist"
	"mcopt/internal/partition"
	"mcopt/internal/rng"
	"mcopt/internal/tsp"
)

// This file extends X1/X2 into full Table-4.1-style method tables: all
// twenty g classes plus [COHO83a] on circuit partition and on TSP, the
// comparisons the paper's §5 defers to [NAHA84]. The paper publishes only
// the conclusions ("the striking commonality ... is in the good performance
// of g = 1"); these tables let a reader check them.

// genericRun executes one Monte Carlo method over generic instances.
// start(i) must return a fresh copy of instance i's fixed starting state.
func genericRun(
	name string, start func(i int) core.Solution, newG func(i int) core.G,
	instances int, budgets []int64, seed uint64,
) [][]float64 {
	out := make([][]float64, len(budgets))
	for b, budget := range budgets {
		out[b] = make([]float64, instances)
		for i := 0; i < instances; i++ {
			r := rng.Derive(fmt.Sprintf("ext/%s/%d", name, budget), seed, uint64(i))
			res := core.Figure1{G: newG(i)}.Run(start(i), core.NewBudget(budget), r)
			out[b][i] = res.BestCost
		}
	}
	return out
}

// classGs builds per-instance g factories for every paper class at a fixed
// problem scale, plus [COHO83a] keyed by a per-instance m.
func classGs(scale gfunc.Scale, cohoonM func(i int) int) []struct {
	Name string
	NewG func(i int) core.G
} {
	out := []struct {
		Name string
		NewG func(i int) core.G
	}{{
		Name: "[COHO83a]",
		NewG: func(i int) core.G { return gfunc.CohoonSahni(cohoonM(i)) },
	}}
	for _, b := range gfunc.Classes() {
		var ys []float64
		if b.NeedsY {
			ys = b.DefaultYs(scale)
		}
		build := b.Build
		out = append(out, struct {
			Name string
			NewG func(i int) core.G
		}{Name: b.Name, NewG: func(int) core.G { return build(ys) }})
	}
	return out
}

// PartitionTable regenerates the [NAHA84] circuit-partition comparison:
// all 21 Monte Carlo rows plus descent restarts and Kernighan–Lin, each
// cell the suite-total cut reduction at that budget.
func PartitionTable(seed uint64, instances, cells, nets int, budgets []int64) *Table {
	nls := make([]*netlist.Netlist, instances)
	starts := make([][]int, instances)
	startSum := 0
	for i := range nls {
		nls[i] = netlist.RandomHyper(rng.Derive("x1t/netlist", seed, uint64(i)), cells, nets, 2, 4)
		b := partition.Random(nls[i], rng.Derive("x1t/start", seed, uint64(i)))
		starts[i] = b.Sides()
		startSum += b.CutSize()
	}
	start := func(i int) core.Solution {
		return partition.NewSolution(partition.MustNew(nls[i], starts[i]))
	}

	t := &Table{
		Title: "X1 (full) — Circuit partition, all g classes, Figure 1",
		Note: fmt.Sprintf("%d instances, %d cells, %d nets (2-4 pins); random-start cut sum %d",
			instances, cells, nets, startSum),
		Columns: budgetColumns(budgets),
	}
	for _, m := range classGs(PartitionScale(), func(i int) int { return nls[i].NumNets() }) {
		costs := genericRun(m.Name, start, m.NewG, instances, budgets, seed)
		reds := make([]int, len(budgets))
		for b := range budgets {
			sum := 0.0
			for _, c := range costs[b] {
				sum += c
			}
			reds[b] = startSum - int(sum)
		}
		t.AddRow(m.Name, reds...)
	}

	// Proven-heuristic baselines at the same budgets.
	addBaseline := func(name string, bestCut func(i int, budget int64) int) {
		reds := make([]int, len(budgets))
		for b, budget := range budgets {
			sum := 0
			for i := 0; i < instances; i++ {
				sum += bestCut(i, budget)
			}
			reds[b] = startSum - sum
		}
		t.AddRow(name, reds...)
	}
	addBaseline("Descent restarts", func(i int, budget int64) int {
		best, _ := partition.DescentRestarts(nls[i],
			core.NewBudget(budget), rng.Derive("x1t/restarts", seed, uint64(i)))
		return best.CutSize()
	})
	addBaseline("Kernighan-Lin", func(i int, budget int64) int {
		p := partition.MustNew(nls[i], starts[i])
		partition.KernighanLin(p, core.NewBudget(budget))
		return p.CutSize()
	})
	addBaseline("Fiduccia-Mattheyses", func(i int, budget int64) int {
		p := partition.MustNew(nls[i], starts[i])
		partition.FiducciaMattheyses(p, core.NewBudget(budget), partition.FMConfig{Tolerance: 1})
		return p.CutSize()
	})
	return t
}

// TSPTable regenerates the [NAHA84]/[GOLD84] TSP comparison: all 21 Monte
// Carlo rows over 2-opt perturbations plus the classic baselines, each
// cell the suite-total tour length ×100 (lower is better).
func TSPTable(seed uint64, instances, cities int, budgets []int64) *Table {
	insts := make([]*tsp.Instance, instances)
	starts := make([][]int, instances)
	for i := range insts {
		insts[i] = tsp.RandomEuclidean(rng.Derive("x2t/instance", seed, uint64(i)), cities)
		starts[i] = tsp.RandomTour(insts[i], rng.Derive("x2t/start", seed, uint64(i))).Order()
	}
	start := func(i int) core.Solution {
		return tsp.MustNewTour(insts[i], starts[i])
	}

	t := &Table{
		Title: "X2 (full) — TSP, all g classes vs proven heuristics (length sum x100)",
		Note: fmt.Sprintf("%d Euclidean instances, %d cities; lower is better",
			instances, cities),
		Columns: budgetColumns(budgets),
	}
	for _, m := range classGs(TSPScale(), func(i int) int { return cities }) {
		costs := genericRun(m.Name, start, m.NewG, instances, budgets, seed)
		cells := make([]int, len(budgets))
		for b := range budgets {
			sum := 0.0
			for _, c := range costs[b] {
				sum += c
			}
			cells[b] = int(sum * 100)
		}
		t.AddRow(m.Name, cells...)
	}

	addBaseline := func(name string, length func(i int, budget int64) float64) {
		cells := make([]int, len(budgets))
		for b, budget := range budgets {
			sum := 0.0
			for i := 0; i < instances; i++ {
				sum += length(i, budget)
			}
			cells[b] = int(sum * 100)
		}
		t.AddRow(name, cells...)
	}
	addBaseline("2-opt restarts [LIN73]", func(i int, budget int64) float64 {
		best, _ := tsp.TwoOptRestarts(insts[i],
			core.NewBudget(budget), rng.Derive("x2t/lin73", seed, uint64(i)))
		return best.Length()
	})
	addBaseline("Hull insertion [STEW77]", func(i int, _ int64) float64 {
		return insts[i].TourLength(tsp.HullInsertion(insts[i]))
	})
	addBaseline("Nearest neighbor", func(i int, _ int64) float64 {
		return insts[i].TourLength(tsp.NearestNeighbor(insts[i], 0))
	})
	return t
}
