package experiment

import (
	"context"
	"fmt"

	"mcopt/internal/checkpoint"
	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/netlist"
	"mcopt/internal/partition"
	"mcopt/internal/rng"
	"mcopt/internal/sched"
	"mcopt/internal/tsp"
)

// This file extends X1/X2 into full Table-4.1-style method tables: all
// twenty g classes plus [COHO83a] on circuit partition and on TSP, the
// comparisons the paper's §5 defers to [NAHA84]. The paper publishes only
// the conclusions ("the striking commonality ... is in the good performance
// of g = 1"); these tables let a reader check them.

// genericRun executes one Monte Carlo method over generic instances on the
// shared scheduler. start(i) must return a fresh copy of instance i's fixed
// starting state. Cells skipped by cancellation keep the starting cost.
// table prefixes the method's checkpoint journal, keeping the per-method
// grids of different tables apart in a shared checkpoint directory.
func genericRun(
	table, name string, start func(i int) core.Solution, newG func(i int) core.G,
	instances int, budgets []int64, seed uint64, ex sched.Options,
) ([][]float64, *sched.Report, error) {
	out := make([][]float64, len(budgets))
	// The RNG stream label depends only on the budget; build it per column.
	labels := make([]string, len(budgets))
	for b, budget := range budgets {
		labels[b] = fmt.Sprintf("ext/%s/%d", name, budget)
		out[b] = make([]float64, instances)
		for i := 0; i < instances; i++ {
			out[b][i] = start(i).Cost()
		}
	}
	grid := sched.Grid2{A: len(budgets), B: instances}
	jr, err := ex.Checkpoint.Journal(table+"-"+name, checkpoint.Fingerprint(
		"experiment.genericRun", table, name,
		fmt.Sprint(instances), fmt.Sprint(budgets), fmt.Sprint(seed)))
	if err != nil {
		return out, nil, err
	}
	defer jr.Close()
	if err := jr.RestoreFloat64(grid.N(), func(slot int, v float64) {
		b, i := grid.Split(slot)
		out[b][i] = v
	}); err != nil {
		return out, nil, err
	}
	if jr != nil {
		ex.Skip = jr.Done
	}
	rep := sched.Run(grid.N(), ex, func(ctx context.Context, j int) error {
		b, i := grid.Split(j)
		r := rng.Derive(labels[b], seed, uint64(i))
		res := core.Figure1{G: newG(i)}.Run(start(i), core.NewBudget(budgets[b]).WithContext(ctx), r)
		out[b][i] = res.BestCost
		return jr.AppendFloat64(ctx, j, res.BestCost)
	})
	return out, rep, nil
}

// classGs builds per-instance g factories for every paper class at a fixed
// problem scale, plus [COHO83a] keyed by a per-instance m.
func classGs(scale gfunc.Scale, cohoonM func(i int) int) []struct {
	Name string
	NewG func(i int) core.G
} {
	out := []struct {
		Name string
		NewG func(i int) core.G
	}{{
		Name: "[COHO83a]",
		NewG: func(i int) core.G { return gfunc.CohoonSahni(cohoonM(i)) },
	}}
	for _, b := range gfunc.Classes() {
		var ys []float64
		if b.NeedsY {
			ys = b.DefaultYs(scale)
		}
		build := b.Build
		out = append(out, struct {
			Name string
			NewG func(i int) core.G
		}{Name: b.Name, NewG: func(int) core.G { return build(ys) }})
	}
	return out
}

// firstErr keeps the first non-nil scheduler error across the many
// per-method grids these tables run.
func firstErr(err error, rep *sched.Report) error {
	if err != nil {
		return err
	}
	if rep == nil {
		return nil
	}
	return rep.Err()
}

// PartitionTable regenerates the [NAHA84] circuit-partition comparison:
// all 21 Monte Carlo rows plus descent restarts and Kernighan–Lin, each
// cell the suite-total cut reduction at that budget.
func PartitionTable(seed uint64, instances, cells, nets int, budgets []int64, ex sched.Options) (*Table, error) {
	nls := make([]*netlist.Netlist, instances)
	starts := make([][]int, instances)
	startSum := 0
	for i := range nls {
		nls[i] = netlist.RandomHyper(rng.Derive("x1t/netlist", seed, uint64(i)), cells, nets, 2, 4)
		b := partition.Random(nls[i], rng.Derive("x1t/start", seed, uint64(i)))
		starts[i] = b.Sides()
		startSum += b.CutSize()
	}
	start := func(i int) core.Solution {
		return partition.NewSolution(partition.MustNew(nls[i], starts[i]))
	}

	t := &Table{
		Title: "X1 (full) — Circuit partition, all g classes, Figure 1",
		Note: fmt.Sprintf("%d instances, %d cells, %d nets (2-4 pins); random-start cut sum %d",
			instances, cells, nets, startSum),
		Columns: budgetColumns(budgets),
	}
	var err error
	for _, m := range classGs(PartitionScale(), func(i int) int { return nls[i].NumNets() }) {
		costs, rep, gerr := genericRun("x1t", m.Name, start, m.NewG, instances, budgets, seed, ex)
		if err == nil {
			err = gerr
		}
		err = firstErr(err, rep)
		reds := make([]int, len(budgets))
		for b := range budgets {
			sum := 0.0
			for _, c := range costs[b] {
				sum += c
			}
			reds[b] = startSum - int(sum)
		}
		t.AddRow(m.Name, reds...)
	}

	// Proven-heuristic baselines at the same budgets, on the same scheduler.
	addBaseline := func(name string, bestCut func(ctx context.Context, i int, budget int64) int) {
		cuts := make([][]int, len(budgets))
		for b := range cuts {
			cuts[b] = make([]int, instances)
			for i := 0; i < instances; i++ {
				cuts[b][i] = partition.MustNew(nls[i], starts[i]).CutSize()
			}
		}
		grid := sched.Grid2{A: len(budgets), B: instances}
		bex := ex
		jr, jerr := bex.Checkpoint.Journal("x1t-"+name, checkpoint.Fingerprint(
			"experiment.PartitionTable.baseline", name,
			fmt.Sprint(instances), fmt.Sprint(budgets), fmt.Sprint(seed)))
		if jerr != nil {
			if err == nil {
				err = jerr
			}
			return
		}
		defer jr.Close()
		if rerr := jr.RestoreInt64(grid.N(), func(slot int, v int64) {
			b, i := grid.Split(slot)
			cuts[b][i] = int(v)
		}); rerr != nil {
			if err == nil {
				err = rerr
			}
			return
		}
		if jr != nil {
			bex.Skip = jr.Done
		}
		rep := sched.Run(grid.N(), bex, func(ctx context.Context, j int) error {
			b, i := grid.Split(j)
			cuts[b][i] = bestCut(ctx, i, budgets[b])
			return jr.AppendInt64(ctx, j, int64(cuts[b][i]))
		})
		err = firstErr(err, rep)
		reds := make([]int, len(budgets))
		for b := range budgets {
			sum := 0
			for _, c := range cuts[b] {
				sum += c
			}
			reds[b] = startSum - sum
		}
		t.AddRow(name, reds...)
	}
	addBaseline("Descent restarts", func(ctx context.Context, i int, budget int64) int {
		best, _ := partition.DescentRestarts(nls[i],
			core.NewBudget(budget).WithContext(ctx), rng.Derive("x1t/restarts", seed, uint64(i)))
		return best.CutSize()
	})
	addBaseline("Kernighan-Lin", func(ctx context.Context, i int, budget int64) int {
		p := partition.MustNew(nls[i], starts[i])
		partition.KernighanLin(p, core.NewBudget(budget).WithContext(ctx))
		return p.CutSize()
	})
	addBaseline("Fiduccia-Mattheyses", func(ctx context.Context, i int, budget int64) int {
		p := partition.MustNew(nls[i], starts[i])
		partition.FiducciaMattheyses(p, core.NewBudget(budget).WithContext(ctx), partition.FMConfig{Tolerance: 1})
		return p.CutSize()
	})
	return t, err
}

// TSPTable regenerates the [NAHA84]/[GOLD84] TSP comparison: all 21 Monte
// Carlo rows over 2-opt perturbations plus the classic baselines, each
// cell the suite-total tour length ×100 (lower is better).
func TSPTable(seed uint64, instances, cities int, budgets []int64, ex sched.Options) (*Table, error) {
	insts := make([]*tsp.Instance, instances)
	starts := make([][]int, instances)
	for i := range insts {
		insts[i] = tsp.RandomEuclidean(rng.Derive("x2t/instance", seed, uint64(i)), cities)
		starts[i] = tsp.RandomTour(insts[i], rng.Derive("x2t/start", seed, uint64(i))).Order()
	}
	start := func(i int) core.Solution {
		return tsp.MustNewTour(insts[i], starts[i])
	}

	t := &Table{
		Title: "X2 (full) — TSP, all g classes vs proven heuristics (length sum x100)",
		Note: fmt.Sprintf("%d Euclidean instances, %d cities; lower is better",
			instances, cities),
		Columns: budgetColumns(budgets),
	}
	var err error
	for _, m := range classGs(TSPScale(), func(i int) int { return cities }) {
		costs, rep, gerr := genericRun("x2t", m.Name, start, m.NewG, instances, budgets, seed, ex)
		if err == nil {
			err = gerr
		}
		err = firstErr(err, rep)
		cells := make([]int, len(budgets))
		for b := range budgets {
			sum := 0.0
			for _, c := range costs[b] {
				sum += c
			}
			cells[b] = int(sum * 100)
		}
		t.AddRow(m.Name, cells...)
	}

	addBaseline := func(name string, length func(ctx context.Context, i int, budget int64) float64) {
		lens := make([][]float64, len(budgets))
		for b := range lens {
			lens[b] = make([]float64, instances)
			for i := 0; i < instances; i++ {
				lens[b][i] = insts[i].TourLength(starts[i])
			}
		}
		grid := sched.Grid2{A: len(budgets), B: instances}
		bex := ex
		jr, jerr := bex.Checkpoint.Journal("x2t-"+name, checkpoint.Fingerprint(
			"experiment.TSPTable.baseline", name,
			fmt.Sprint(instances), fmt.Sprint(budgets), fmt.Sprint(seed)))
		if jerr != nil {
			if err == nil {
				err = jerr
			}
			return
		}
		defer jr.Close()
		if rerr := jr.RestoreFloat64(grid.N(), func(slot int, v float64) {
			b, i := grid.Split(slot)
			lens[b][i] = v
		}); rerr != nil {
			if err == nil {
				err = rerr
			}
			return
		}
		if jr != nil {
			bex.Skip = jr.Done
		}
		rep := sched.Run(grid.N(), bex, func(ctx context.Context, j int) error {
			b, i := grid.Split(j)
			lens[b][i] = length(ctx, i, budgets[b])
			return jr.AppendFloat64(ctx, j, lens[b][i])
		})
		err = firstErr(err, rep)
		cells := make([]int, len(budgets))
		for b := range budgets {
			sum := 0.0
			for _, l := range lens[b] {
				sum += l
			}
			cells[b] = int(sum * 100)
		}
		t.AddRow(name, cells...)
	}
	addBaseline("2-opt restarts [LIN73]", func(ctx context.Context, i int, budget int64) float64 {
		best, _ := tsp.TwoOptRestarts(insts[i],
			core.NewBudget(budget).WithContext(ctx), rng.Derive("x2t/lin73", seed, uint64(i)))
		return best.Length()
	})
	addBaseline("Hull insertion [STEW77]", func(_ context.Context, i int, _ int64) float64 {
		return insts[i].TourLength(tsp.HullInsertion(insts[i]))
	})
	addBaseline("Nearest neighbor", func(_ context.Context, i int, _ int64) float64 {
		return insts[i].TourLength(tsp.NearestNeighbor(insts[i], 0))
	})
	return t, err
}
