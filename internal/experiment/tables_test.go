package experiment

import (
	"strings"
	"testing"
)

// Small budgets keep the full table pipelines fast in tests; the shape
// assertions here are deliberately loose (EXPERIMENTS.md holds the
// paper-scale comparisons).
var testBudgets = []int64{120, 240}

func TestTable41Pipeline(t *testing.T) {
	tab, x, _ := Table41(1, testBudgets, Config{})
	if len(tab.Rows) != 23 { // Goto + [COHO83a] + 20 classes + (optimal)
		t.Fatalf("Table 4.1 has %d rows, want 23", len(tab.Rows))
	}
	if last := tab.Rows[len(tab.Rows)-1]; last.Label != "(optimal)" {
		t.Fatalf("last row %q, want (optimal)", last.Label)
	}
	if tab.Rows[0].Label != "Goto" {
		t.Fatalf("first row %q, want Goto", tab.Rows[0].Label)
	}
	if tab.Rows[0].Cells[1] != "-" {
		t.Fatalf("Goto row should dash non-first columns, got %v", tab.Rows[0].Cells)
	}
	if len(x.MethodNames) != 21 {
		t.Fatalf("matrix has %d methods, want 21", len(x.MethodNames))
	}
	if !strings.Contains(tab.Note, "starting density sum") {
		t.Fatalf("note missing start sum: %q", tab.Note)
	}
}

func TestTable42aPipeline(t *testing.T) {
	tab, x, _ := Table42a(1, testBudgets, Config{})
	if len(tab.Rows) != 14 { // 13 methods + (optimal)
		t.Fatalf("Table 4.2(a) has %d rows, want 14", len(tab.Rows))
	}
	// From Goto starts, improvements must be small relative to the start sum
	// (§4.2.3: "this improvement is less than 5%" at paper scale; allow 15%
	// at test scale).
	for m := range x.MethodNames {
		for b := range x.Budgets {
			if red := x.Reduction(m, b); red < 0 || float64(red) > 0.15*float64(x.StartSum()) {
				t.Fatalf("method %s reduction %d implausible against Goto start sum %d",
					x.MethodNames[m], red, x.StartSum())
			}
		}
	}
}

func TestTable42bPipeline(t *testing.T) {
	tab, f1, f2, _ := Table42b(1, 2000, Config{})
	if len(tab.Columns) != 3 || tab.Columns[0] != "Figure 1" || tab.Columns[1] != "Figure 2" || tab.Columns[2] != "better" {
		t.Fatalf("Table 4.2(b) columns = %v", tab.Columns)
	}
	if !strings.Contains(tab.Note, "best-of spread") || !strings.Contains(tab.Note, "improved") {
		t.Fatalf("Table 4.2(b) note missing §4.2.4 statistics: %q", tab.Note)
	}
	// The better-of column must dominate both strategy columns.
	for _, r := range tab.Rows[:len(tab.Rows)-1] {
		r1, r2, best := cellInt(t, r, 0), cellInt(t, r, 1), cellInt(t, r, 2)
		if best != max(r1, r2) {
			t.Fatalf("row %s better-of %d != max(%d, %d)", r.Label, best, r1, r2)
		}
	}
	if len(tab.Rows) != 14 { // 13 methods + (optimal)
		t.Fatalf("Table 4.2(b) has %d rows, want 14", len(tab.Rows))
	}
	if f1.StartSum() != f2.StartSum() {
		t.Fatal("Figure-1 and Figure-2 runs used different suites")
	}
	// Both strategies must make progress at this budget.
	for m := range f1.MethodNames {
		if f1.Reduction(m, 0) <= 0 || f2.Reduction(m, 0) <= 0 {
			t.Fatalf("method %s made no progress (fig1 %d, fig2 %d)",
				f1.MethodNames[m], f1.Reduction(m, 0), f2.Reduction(m, 0))
		}
	}
}

func TestTable42cdPipelines(t *testing.T) {
	tabC, xc, _ := Table42c(1, testBudgets, Config{})
	if len(tabC.Rows) != 15 { // Goto + 13 methods + (optimal)
		t.Fatalf("Table 4.2(c) has %d rows, want 15", len(tabC.Rows))
	}
	if xc.StartSum() < 3500 {
		t.Fatalf("NOLA start sum %d implausibly small", xc.StartSum())
	}
	tabD, xd, _ := Table42d(1, testBudgets, Config{})
	if len(tabD.Rows) != 14 {
		t.Fatalf("Table 4.2(d) has %d rows, want 14", len(tabD.Rows))
	}
	// Goto starts are much denser-reduced already; start sum must be well
	// below the random-start sum.
	if xd.StartSum() >= xc.StartSum() {
		t.Fatalf("Goto start sum %d not below random start sum %d", xd.StartSum(), xc.StartSum())
	}
}

func TestBudgetColumnsHeaders(t *testing.T) {
	cols := budgetColumns([]int64{Seconds(6), 777})
	if cols[0] != "6 sec" {
		t.Fatalf("whole-second budget rendered %q", cols[0])
	}
	if cols[1] != "777 moves" {
		t.Fatalf("odd budget rendered %q", cols[1])
	}
}

func TestOptimalRowDominatesAllMethods(t *testing.T) {
	// The "(optimal)" reference is a hard upper bound: no Monte Carlo
	// method may report a larger reduction at any budget.
	tab, x, _ := Table41(3, testBudgets, Config{})
	suite := NewSuite(GOLAParams(), 3)
	opt, ok := SuiteOptimum(suite)
	if !ok {
		t.Fatal("exact solver refused a 15-cell suite")
	}
	bound := suite.StartDensitySum() - opt
	for m := range x.MethodNames {
		for b := range x.Budgets {
			if red := x.Reduction(m, b); red > bound {
				t.Fatalf("method %s reduction %d exceeds proven optimum %d",
					x.MethodNames[m], red, bound)
			}
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Label != "(optimal)" {
		t.Fatalf("last row %q", last.Label)
	}
}

func TestSuiteOptimumRefusesBigCells(t *testing.T) {
	p := SuiteParams{Name: "big", Instances: 1, Cells: 30, Nets: 10, MinPins: 2, MaxPins: 2}
	if _, ok := SuiteOptimum(NewSuite(p, 1)); ok {
		t.Fatal("SuiteOptimum claimed success beyond the exact solver bound")
	}
}
