package experiment

import (
	"context"
	"fmt"

	"mcopt/internal/sched"
	"mcopt/internal/stats"
)

// Replicated aggregates a reduction matrix over several independent
// replications of an experiment (fresh instances and fresh random streams
// per seed) — the error bars the 1985 paper never printed. The paper itself
// leans on this notion informally when it excuses ranking noise ("the few
// exceptions can be explained by the randomness in the algorithms",
// §4.2.2); Replicate quantifies that noise.
type Replicated struct {
	MethodNames []string
	Budgets     []int64
	// Reductions[r][m][b] is replication r's total reduction.
	Reductions [][][]int
}

// Replicate runs the experiment behind `run` once per seed. Seeds are
// independent jobs on the shared scheduler (ex sets the seed-level worker
// count; each run may parallelize internally on its own). The run function
// must return matrices with identical method/budget axes.
//
// Callers that attach one Telemetry to every replication should keep
// ex.Workers = 1: cells of different seeds share (method, budget, instance)
// keys, so seed-parallel runs would interleave their event streams.
func Replicate(seeds []uint64, ex sched.Options, run func(seed uint64) (*Matrix, error)) (*Replicated, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: Replicate needs at least one seed")
	}
	xs := make([]*Matrix, len(seeds))
	srep := sched.Run(len(seeds), ex, func(_ context.Context, i int) error {
		// The cancellation context reaches the runs through their own
		// Config.Exec; a replication interrupted mid-run still hands back its
		// partial matrix.
		x, err := run(seeds[i])
		xs[i] = x
		return err
	})
	var rep *Replicated
	for _, x := range xs {
		if x == nil {
			continue
		}
		if rep == nil {
			rep = &Replicated{MethodNames: x.MethodNames, Budgets: x.Budgets}
		} else if len(x.MethodNames) != len(rep.MethodNames) || len(x.Budgets) != len(rep.Budgets) {
			return nil, fmt.Errorf("experiment: replication axes changed between seeds")
		}
		reds := make([][]int, len(x.MethodNames))
		for m := range reds {
			reds[m] = x.Reductions(m)
		}
		rep.Reductions = append(rep.Reductions, reds)
	}
	if rep == nil {
		return nil, srep.Err()
	}
	return rep, srep.Err()
}

// Stats returns the mean and population standard deviation of method m's
// reduction at budget b across replications.
func (r *Replicated) Stats(m, b int) (mean, std float64) {
	vals := make([]float64, len(r.Reductions))
	for i, rep := range r.Reductions {
		vals[i] = float64(rep[m][b])
	}
	return stats.Mean(vals), stats.Std(vals)
}

// Table renders mean±std cells.
func (r *Replicated) Table(title string) *Table {
	t := &Table{
		Title:   title,
		Note:    fmt.Sprintf("mean±std over %d replications (fresh instances per seed)", len(r.Reductions)),
		Columns: budgetColumns(r.Budgets),
	}
	for m, name := range r.MethodNames {
		cells := make([]string, len(r.Budgets))
		for b := range r.Budgets {
			mean, std := r.Stats(m, b)
			cells[b] = fmt.Sprintf("%.0f±%.0f", mean, std)
		}
		t.AddTextRow(name, cells...)
	}
	return t
}
