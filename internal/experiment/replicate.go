package experiment

import (
	"fmt"

	"mcopt/internal/stats"
)

// Replicated aggregates a reduction matrix over several independent
// replications of an experiment (fresh instances and fresh random streams
// per seed) — the error bars the 1985 paper never printed. The paper itself
// leans on this notion informally when it excuses ranking noise ("the few
// exceptions can be explained by the randomness in the algorithms",
// §4.2.2); Replicate quantifies that noise.
type Replicated struct {
	MethodNames []string
	Budgets     []int64
	// Reductions[r][m][b] is replication r's total reduction.
	Reductions [][][]int
}

// Replicate runs the experiment behind `run` once per seed. The run
// function must return matrices with identical method/budget axes.
func Replicate(seeds []uint64, run func(seed uint64) *Matrix) (*Replicated, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: Replicate needs at least one seed")
	}
	var rep *Replicated
	for _, seed := range seeds {
		x := run(seed)
		if rep == nil {
			rep = &Replicated{MethodNames: x.MethodNames, Budgets: x.Budgets}
		} else if len(x.MethodNames) != len(rep.MethodNames) || len(x.Budgets) != len(rep.Budgets) {
			return nil, fmt.Errorf("experiment: replication axes changed between seeds")
		}
		reds := make([][]int, len(x.MethodNames))
		for m := range reds {
			reds[m] = x.Reductions(m)
		}
		rep.Reductions = append(rep.Reductions, reds)
	}
	return rep, nil
}

// Stats returns the mean and population standard deviation of method m's
// reduction at budget b across replications.
func (r *Replicated) Stats(m, b int) (mean, std float64) {
	vals := make([]float64, len(r.Reductions))
	for i, rep := range r.Reductions {
		vals[i] = float64(rep[m][b])
	}
	return stats.Mean(vals), stats.Std(vals)
}

// Table renders mean±std cells.
func (r *Replicated) Table(title string) *Table {
	t := &Table{
		Title:   title,
		Note:    fmt.Sprintf("mean±std over %d replications (fresh instances per seed)", len(r.Reductions)),
		Columns: budgetColumns(r.Budgets),
	}
	for m, name := range r.MethodNames {
		cells := make([]string, len(r.Budgets))
		for b := range r.Budgets {
			mean, std := r.Stats(m, b)
			cells[b] = fmt.Sprintf("%.0f±%.0f", mean, std)
		}
		t.AddTextRow(name, cells...)
	}
	return t
}
