package experiment

import (
	"fmt"

	"mcopt/internal/exact"
)

// PaperBudgets returns the 6/9/12-second budgets of Tables 4.1 and 4.2(a),
// (c), (d), scaled by the given factor (1 = paper scale). The benches use
// scale < 1 to keep testing.B iterations fast.
func PaperBudgets(scale float64) []int64 {
	return []int64{
		int64(scale * float64(Seconds(6))),
		int64(scale * float64(Seconds(9))),
		int64(scale * float64(Seconds(12))),
	}
}

// budgetColumns renders budget headers in paper units ("6 sec") when the
// budget corresponds to whole seconds, and in moves otherwise.
func budgetColumns(budgets []int64) []string {
	out := make([]string, len(budgets))
	for i, b := range budgets {
		if b%MovesPerVAXSecond == 0 {
			out[i] = fmt.Sprintf("%d sec", b/MovesPerVAXSecond)
		} else {
			out[i] = fmt.Sprintf("%d moves", b)
		}
	}
	return out
}

// Table41 regenerates Table 4.1: total density reduction on the random-start
// GOLA suite for the Goto baseline, [COHO83a], and all twenty g classes
// under the Figure-1 strategy.
func Table41(seed uint64, budgets []int64, cfg Config) (*Table, *Matrix, error) {
	suite := NewSuite(GOLAParams(), seed)
	methods := AllMethods(GOLAScale(), TunedGOLA)
	cfg.Seed = seed
	x, err := Run(suite, methods, budgets, cfg)

	t := &Table{
		Title:   "Table 4.1 — GOLA, random starts, Figure 1",
		Note:    fmt.Sprintf("%d instances, 15 elements, 150 nets; starting density sum %d", suite.Size(), x.StartSum()),
		Columns: budgetColumns(budgets),
	}
	// Goto appears once (its cost is fixed); the paper prints it in the
	// first column with dashes after.
	gotoRed := gotoReduction(suite)
	cells := make([]string, len(budgets))
	cells[0] = fmt.Sprintf("%d", gotoRed)
	for i := 1; i < len(cells); i++ {
		cells[i] = "-"
	}
	t.AddTextRow("Goto", cells...)
	addReductionRows(t, x)
	addOptimalRow(t, suite, len(budgets))
	return t, x, err
}

// Table42a regenerates Table 4.2(a): improvements over Goto starting
// arrangements on GOLA for the thirteen surviving methods under Figure 1.
func Table42a(seed uint64, budgets []int64, cfg Config) (*Table, *Matrix, error) {
	suite := NewSuite(GOLAParams(), seed).WithGotoStarts()
	methods := SurvivingMethods(GOLAScale(), TunedGOLA)
	cfg.Seed = seed
	x, err := Run(suite, methods, budgets, cfg)
	t := &Table{
		Title:   "Table 4.2(a) — GOLA, Goto starts, Figure 1",
		Note:    fmt.Sprintf("starting (Goto) density sum %d", x.StartSum()),
		Columns: budgetColumns(budgets),
	}
	addReductionRows(t, x)
	addOptimalRow(t, suite, len(budgets))
	return t, x, err
}

// Table42b regenerates Table 4.2(b): Figure 1 vs Figure 2 on the
// random-start GOLA suite at the paper's 3-minute budget.
func Table42b(seed uint64, budget int64, cfg Config) (*Table, *Matrix, *Matrix, error) {
	suite := NewSuite(GOLAParams(), seed)
	methods := SurvivingMethods(GOLAScale(), TunedGOLA)
	cfg.Seed = seed
	fig1, err := Run(suite, methods, []int64{budget}, cfg)
	for i := range methods {
		methods[i] = methods[i].WithStrategy(Fig2)
	}
	fig2, err2 := Run(suite, methods, []int64{budget}, cfg)
	if err == nil {
		err = err2
	}

	t := &Table{
		Title:   "Table 4.2(b) — GOLA, random starts, Figure 1 vs Figure 2",
		Columns: []string{"Figure 1", "Figure 2", "better"},
	}
	// §4.2.4's summary statistic: "when the better of the two strategies is
	// considered for each g class, the performance difference between any
	// pair of g classes is at most 6%."
	bestLo, bestHi := 1<<30, 0
	improvedByFig2 := 0
	for m := range fig1.MethodNames {
		r1, r2 := fig1.Reduction(m, 0), fig2.Reduction(m, 0)
		best := max(r1, r2)
		bestLo, bestHi = min(bestLo, best), max(bestHi, best)
		if r2 > r1 {
			improvedByFig2++
		}
		t.AddRow(fig1.MethodNames[m], r1, r2, best)
	}
	spread := 0.0
	if bestHi > 0 {
		spread = 100 * float64(bestHi-bestLo) / float64(bestHi)
	}
	t.Note = fmt.Sprintf(
		"budget %d moves per instance; starting density sum %d; Figure 2 improved %d of %d classes; best-of spread %.1f%%",
		budget, fig1.StartSum(), improvedByFig2, len(fig1.MethodNames), spread)
	addOptimalRow(t, suite, 3)
	return t, fig1, fig2, err
}

// Table42c regenerates Table 4.2(c): the NOLA suite from random starts,
// surviving methods plus the Goto baseline row.
func Table42c(seed uint64, budgets []int64, cfg Config) (*Table, *Matrix, error) {
	suite := NewSuite(NOLAParams(), seed)
	methods := SurvivingMethods(NOLAScale(), TunedNOLA)
	cfg.Seed = seed
	x, err := Run(suite, methods, budgets, cfg)
	t := &Table{
		Title:   "Table 4.2(c) — NOLA, random starts, Figure 1",
		Note:    fmt.Sprintf("starting density sum %d", x.StartSum()),
		Columns: budgetColumns(budgets),
	}
	gotoRed := gotoReduction(suite)
	cells := make([]string, len(budgets))
	cells[0] = fmt.Sprintf("%d", gotoRed)
	for i := 1; i < len(cells); i++ {
		cells[i] = "-"
	}
	t.AddTextRow("Goto", cells...)
	addReductionRows(t, x)
	addOptimalRow(t, suite, len(budgets))
	return t, x, err
}

// Table42d regenerates Table 4.2(d): the NOLA suite from Goto starts.
func Table42d(seed uint64, budgets []int64, cfg Config) (*Table, *Matrix, error) {
	suite := NewSuite(NOLAParams(), seed).WithGotoStarts()
	methods := SurvivingMethods(NOLAScale(), TunedNOLA)
	cfg.Seed = seed
	x, err := Run(suite, methods, budgets, cfg)
	t := &Table{
		Title:   "Table 4.2(d) — NOLA, Goto starts, Figure 1",
		Note:    fmt.Sprintf("starting (Goto) density sum %d", x.StartSum()),
		Columns: budgetColumns(budgets),
	}
	addReductionRows(t, x)
	addOptimalRow(t, suite, len(budgets))
	return t, x, err
}

// addReductionRows appends one row per method with its per-budget totals.
func addReductionRows(t *Table, x *Matrix) {
	for m, name := range x.MethodNames {
		t.AddRow(name, x.Reductions(m)...)
	}
}

// addOptimalRow appends the provably maximal reduction as a reference line
// — something the 1985 authors could not compute. It is silently skipped
// for instances beyond the exact solver's reach.
func addOptimalRow(t *Table, suite *Suite, cols int) {
	opt, ok := SuiteOptimum(suite)
	if !ok {
		return
	}
	red := suite.StartDensitySum() - opt
	cells := make([]string, cols)
	for i := range cells {
		cells[i] = fmt.Sprintf("%d", red)
	}
	t.AddTextRow("(optimal)", cells...)
}

// SuiteOptimum returns the sum of the suite's exact optimal densities, or
// false if any instance exceeds the exact solver's size bound.
func SuiteOptimum(suite *Suite) (int, bool) {
	total := 0
	for _, nl := range suite.Netlists {
		d, err := exact.MinDensity(nl)
		if err != nil {
			return 0, false
		}
		total += d
	}
	return total, true
}

// gotoReduction returns the suite-total reduction achieved by replacing each
// starting arrangement with Goto's constructive order.
func gotoReduction(suite *Suite) int {
	gs := suite.WithGotoStarts()
	total := 0
	for i := 0; i < suite.Size(); i++ {
		total += suite.Start(i).Density() - gs.Start(i).Density()
	}
	return total
}
