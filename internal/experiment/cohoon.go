package experiment

import (
	"context"
	"fmt"

	"mcopt/internal/checkpoint"
	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/linarr"
	"mcopt/internal/rng"
	"mcopt/internal/sched"
)

// CohoonBest reproduces the §4.2.2 aside about the [COHO83a] row of Table
// 4.1: "Cohoon and Sahni ... concluded that from their set of heuristics,
// the best was one that started with the result of [GOTO77] and used a
// single exchange method coupled with the above g function. To get the
// results for our table, we simply used the above g function together with
// the strategy of Figure 1 and pairwise interchange. Presumably, the
// reductions in density would have been greater had we used the best
// heuristic reported in [COHO83a]."
//
// The returned table measures both configurations (plus the intermediate
// single-exchange variant) on the same GOLA suite at each budget, settling
// the "presumably": rows report total reduction from the *random* starting
// arrangements, so the Goto-start configurations include Goto's own
// contribution, exactly as a reader of Table 4.1 would compare them.
func CohoonBest(seed uint64, budgets []int64, ex sched.Options) (*Table, error) {
	suite := NewSuite(GOLAParams(), seed)
	gotoSuite := suite.WithGotoStarts()

	t := &Table{
		Title: "[COHO83a] as Table 4.1 ran it vs the best heuristic of [COHO83a] (§4.2.2)",
		Note: fmt.Sprintf("total reduction from random starts (sum %d); Goto alone contributes %d",
			suite.StartDensitySum(), gotoReduction(suite)),
		Columns: budgetColumns(budgets),
	}

	type variant struct {
		name     string
		suite    *Suite
		strategy StrategyKind
		kind     linarr.MoveKind
	}
	variants := []variant{
		{"Fig 1, pairwise, random start (Table 4.1)", suite, Fig1, linarr.PairwiseInterchange},
		{"Fig 1, single exch, random start", suite, Fig1, linarr.SingleExchange},
		{"Fig 2, single exch, Goto start (their best)", gotoSuite, Fig2, linarr.SingleExchange},
	}
	// The RNG stream label depends only on (variant, budget); build them
	// once per row here rather than once per cell.
	labels := make([][]string, len(variants))
	for v, va := range variants {
		labels[v] = make([]string, len(budgets))
		for b, budget := range budgets {
			labels[v][b] = fmt.Sprintf("cohoon/%s/%d", va.name, budget)
		}
	}

	grid := sched.Grid3{A: len(variants), B: len(budgets), C: suite.Size()}
	reds := make([]int, grid.N()) // zero = "no reduction" for skipped cells
	jr, err := ex.Checkpoint.Journal("cohoon", checkpoint.Fingerprint(
		"experiment.CohoonBest", fmt.Sprint(seed), fmt.Sprint(budgets), fmt.Sprint(suite.Size())))
	if err != nil {
		return nil, err
	}
	defer jr.Close()
	if err := jr.RestoreInt64(grid.N(), func(slot int, v int64) { reds[slot] = int(v) }); err != nil {
		return nil, err
	}
	if jr != nil {
		ex.Skip = jr.Done
	}
	rep := sched.Run(grid.N(), ex, func(ctx context.Context, j int) error {
		v, b, i := grid.Split(j)
		va := variants[v]
		sol := linarr.NewSolution(va.suite.Start(i), va.kind)
		g := gfunc.CohoonSahni(suite.Netlists[i].NumNets())
		r := rng.Derive(labels[v][b], seed, uint64(i))
		bud := core.NewBudget(budgets[b]).WithContext(ctx)
		var res core.Result
		if va.strategy == Fig2 {
			res = core.Figure2{G: g}.Run(sol, bud, r)
		} else {
			res = core.Figure1{G: g}.Run(sol, bud, r)
		}
		reds[j] = int(res.Reduction())
		return jr.AppendInt64(ctx, j, int64(reds[j]))
	})

	gotoBonus := gotoReduction(suite)
	for v, va := range variants {
		row := make([]int, len(budgets))
		for b := range budgets {
			total := 0
			for i := 0; i < suite.Size(); i++ {
				total += reds[grid.Index(v, b, i)]
			}
			if va.suite == gotoSuite {
				total += gotoBonus // count from the random starts, like Table 4.1 readers would
			}
			row[b] = total
		}
		t.AddRow(va.name, row...)
	}
	addOptimalRow(t, suite, len(budgets))
	return t, rep.Err()
}
