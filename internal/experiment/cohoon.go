package experiment

import (
	"fmt"

	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/linarr"
	"mcopt/internal/rng"
)

// CohoonBest reproduces the §4.2.2 aside about the [COHO83a] row of Table
// 4.1: "Cohoon and Sahni ... concluded that from their set of heuristics,
// the best was one that started with the result of [GOTO77] and used a
// single exchange method coupled with the above g function. To get the
// results for our table, we simply used the above g function together with
// the strategy of Figure 1 and pairwise interchange. Presumably, the
// reductions in density would have been greater had we used the best
// heuristic reported in [COHO83a]."
//
// The returned table measures both configurations (plus the intermediate
// single-exchange variant) on the same GOLA suite at each budget, settling
// the "presumably": rows report total reduction from the *random* starting
// arrangements, so the Goto-start configurations include Goto's own
// contribution, exactly as a reader of Table 4.1 would compare them.
func CohoonBest(seed uint64, budgets []int64) *Table {
	suite := NewSuite(GOLAParams(), seed)
	gotoSuite := suite.WithGotoStarts()

	t := &Table{
		Title: "[COHO83a] as Table 4.1 ran it vs the best heuristic of [COHO83a] (§4.2.2)",
		Note: fmt.Sprintf("total reduction from random starts (sum %d); Goto alone contributes %d",
			suite.StartDensitySum(), gotoReduction(suite)),
		Columns: budgetColumns(budgets),
	}

	type variant struct {
		name     string
		suite    *Suite
		strategy StrategyKind
		kind     linarr.MoveKind
	}
	variants := []variant{
		{"Fig 1, pairwise, random start (Table 4.1)", suite, Fig1, linarr.PairwiseInterchange},
		{"Fig 1, single exch, random start", suite, Fig1, linarr.SingleExchange},
		{"Fig 2, single exch, Goto start (their best)", gotoSuite, Fig2, linarr.SingleExchange},
	}
	gotoBonus := gotoReduction(suite)
	for _, v := range variants {
		reds := make([]int, len(budgets))
		for b, budget := range budgets {
			total := 0
			for i := 0; i < suite.Size(); i++ {
				sol := linarr.NewSolution(v.suite.Start(i), v.kind)
				g := gfunc.CohoonSahni(suite.Netlists[i].NumNets())
				r := rng.Derive(fmt.Sprintf("cohoon/%s/%d", v.name, budget), seed, uint64(i))
				bud := core.NewBudget(budget)
				var res core.Result
				if v.strategy == Fig2 {
					res = core.Figure2{G: g}.Run(sol, bud, r)
				} else {
					res = core.Figure1{G: g}.Run(sol, bud, r)
				}
				total += int(res.Reduction())
			}
			if v.suite == gotoSuite {
				total += gotoBonus // count from the random starts, like Table 4.1 readers would
			}
			reds[b] = total
		}
		t.AddRow(v.name, reds...)
	}
	addOptimalRow(t, suite, len(budgets))
	return t
}
