package experiment

import (
	"fmt"

	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/netlist"
)

// StrategyKind selects a search engine.
type StrategyKind int

const (
	// Fig1 is the Metropolis-adaptation strategy of the paper's Figure 1.
	Fig1 StrategyKind = iota
	// Fig2 is the descend-then-jump strategy of the paper's Figure 2.
	Fig2
)

// String implements fmt.Stringer.
func (s StrategyKind) String() string {
	switch s {
	case Fig1:
		return "Figure 1"
	case Fig2:
		return "Figure 2"
	default:
		return "unknown"
	}
}

// Method is one table row: a g class bound to a strategy. NewG is a factory
// because the Cohoon–Sahni class depends on the instance's net count.
type Method struct {
	Name     string
	Strategy StrategyKind
	NewG     func(nl *netlist.Netlist) core.G
}

// WithStrategy returns a copy of the method running under the given
// strategy (used by the Table 4.2(b) Figure-1 vs Figure-2 comparison).
func (m Method) WithStrategy(s StrategyKind) Method {
	m.Strategy = s
	return m
}

// ClassMethod builds the method for a paper g class, applying the tuned
// multiplier for the class (1 if absent) to its default schedule.
func ClassMethod(b gfunc.Builder, scale gfunc.Scale, tuned map[int]float64) Method {
	var ys []float64
	if b.NeedsY {
		mult := 1.0
		if m, ok := tuned[b.ID]; ok {
			mult = m
		}
		ys = b.DefaultYs(scale)
		for i := range ys {
			ys[i] *= mult
		}
	}
	build := b.Build
	return Method{
		Name:     b.Name,
		Strategy: Fig1,
		NewG:     func(*netlist.Netlist) core.G { return build(ys) },
	}
}

// CohoonMethod builds the [COHO83a] row: g(density) = min(density/(m+5),
// 0.9) with m the instance's net count, run (as the paper did for Table 4.1)
// under the Figure-1 strategy with pairwise interchange.
func CohoonMethod() Method {
	return Method{
		Name:     "[COHO83a]",
		Strategy: Fig1,
		NewG:     func(nl *netlist.Netlist) core.G { return gfunc.CohoonSahni(nl.NumNets()) },
	}
}

// AllMethods returns the 21 Monte-Carlo rows of Table 4.1 in paper order:
// [COHO83a] followed by the twenty g classes.
func AllMethods(scale gfunc.Scale, tuned map[int]float64) []Method {
	out := []Method{CohoonMethod()}
	for _, b := range gfunc.Classes() {
		out = append(out, ClassMethod(b, scale, tuned))
	}
	return out
}

// survivorIDs are the g classes the paper keeps after §4.3.1 drops the value
// classes 5–12 "because of their poor performance on the GOLA instances".
var survivorIDs = []int{1, 2, 3, 4, 13, 14, 15, 16, 17, 18, 19, 20}

// SurvivingMethods returns the 13 rows of Tables 4.2(a)–(d): [COHO83a] plus
// the survivor classes.
func SurvivingMethods(scale gfunc.Scale, tuned map[int]float64) []Method {
	out := []Method{CohoonMethod()}
	for _, id := range survivorIDs {
		b, ok := gfunc.ByID(id)
		if !ok {
			panic(fmt.Sprintf("experiment: unknown survivor class id %d", id))
		}
		out = append(out, ClassMethod(b, scale, tuned))
	}
	return out
}

// GOLAScale characterizes the GOLA suite's cost magnitudes for default
// schedules: random 15-cell/150-net arrangements have densities near 86 and
// pairwise-interchange uphill deltas of one or two.
func GOLAScale() gfunc.Scale { return gfunc.Scale{TypicalCost: 86, TypicalDelta: 2} }

// NOLAScale characterizes the NOLA suite (densities near 142).
func NOLAScale() gfunc.Scale { return gfunc.Scale{TypicalCost: 142, TypicalDelta: 2} }
