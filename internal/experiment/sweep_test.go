package experiment

import (
	"strings"
	"testing"
)

func TestSizeSweepShape(t *testing.T) {
	p := SweepParams{
		Sizes:       []int{6, 10, 25},
		NetsPerCell: 8,
		Instances:   3,
		Budget:      600,
		Seed:        1,
	}
	tab, _ := SizeSweep(p)
	if len(tab.Rows) != 3 {
		t.Fatalf("sweep has %d rows, want 3", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		if len(r.Cells) != 5 {
			t.Fatalf("row %d arity %d, want 5", i, len(r.Cells))
		}
		start := cellInt(t, r, 0)
		if start <= 0 {
			t.Fatalf("row %s has non-positive start sum", r.Label)
		}
		for c := 1; c <= 3; c++ {
			red := cellInt(t, r, c)
			if red < 0 || red > start {
				t.Fatalf("row %s cell %d reduction %d outside [0, %d]", r.Label, c, red, start)
			}
		}
	}
	// Small sizes must carry an exact-optimal column; and no method may
	// exceed it.
	small := tab.Rows[0]
	opt := cellInt(t, small, 4)
	for c := 1; c <= 3; c++ {
		if cellInt(t, small, c) > opt {
			t.Fatalf("method reduction exceeds proven optimum on n=6")
		}
	}
	// Sizes beyond the solver bound print a dash.
	if tab.Rows[2].Cells[4] != "-" {
		t.Fatalf("n=25 optimal cell = %q, want dash", tab.Rows[2].Cells[4])
	}
}

func TestSizeSweepDefaults(t *testing.T) {
	p := DefaultSweepParams(2)
	if len(p.Sizes) == 0 || p.NetsPerCell != 10 || p.Budget != Seconds(12) {
		t.Fatalf("defaults wrong: %+v", p)
	}
	// Empty Sizes fall back to defaults inside SizeSweep.
	tab, _ := SizeSweep(SweepParams{Seed: 2, Sizes: nil})
	if len(tab.Rows) != len(DefaultSweepParams(2).Sizes) {
		t.Fatalf("fallback rows = %d", len(tab.Rows))
	}
}

func TestSizeSweepDeterministic(t *testing.T) {
	p := SweepParams{Sizes: []int{8}, NetsPerCell: 6, Instances: 2, Budget: 300, Seed: 5}
	a, _ := SizeSweep(p)
	b, _ := SizeSweep(p)
	if a.String() != b.String() {
		t.Fatal("sweep not deterministic")
	}
}

func TestSizeSweepPartialDefaults(t *testing.T) {
	// Zero fields fall back individually; provided fields are preserved.
	tab, _ := SizeSweep(SweepParams{Seed: 3, Budget: 300, Instances: 2, Sizes: []int{6}})
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Note, "300 moves") || !strings.Contains(tab.Note, "2 instances") {
		t.Fatalf("provided fields clobbered by defaults: %q", tab.Note)
	}
	if !strings.Contains(tab.Note, "10 nets per cell") {
		t.Fatalf("missing field not defaulted: %q", tab.Note)
	}
}
