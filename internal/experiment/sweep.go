package experiment

import (
	"fmt"
	"time"

	"mcopt/internal/core"
	"mcopt/internal/exact"
	"mcopt/internal/gfunc"
	"mcopt/internal/gotoh"
	"mcopt/internal/linarr"
	"mcopt/internal/netlist"
	"mcopt/internal/rng"
)

// SweepParams configures the instance-size scaling study: the paper's
// 15-element instances scaled up and down at constant net-to-cell ratio,
// with the paper's per-instance budget.
type SweepParams struct {
	// Sizes are the cell counts to sweep (default 8..40).
	Sizes []int
	// NetsPerCell keeps the paper's density regime (150/15 = 10).
	NetsPerCell int
	// Instances per size (default 10).
	Instances int
	// Budget in moves per instance per method (default the paper's 12 s).
	Budget int64
	// Seed drives generation and runs.
	Seed uint64
	// Throughput adds a wall-clock moves/sec column per size, making kernel
	// scaling regressions visible from the CLI. Off by default: the column
	// is machine-dependent, so deterministic (golden-tested) tables omit it.
	Throughput bool
}

// DefaultSweepParams returns the published-regime defaults.
func DefaultSweepParams(seed uint64) SweepParams {
	return SweepParams{
		Sizes:       []int{8, 12, 15, 20, 30, 40},
		NetsPerCell: 10,
		Instances:   10,
		Budget:      Seconds(12),
		Seed:        seed,
	}
}

// SizeSweep measures how instance size moves the Goto-vs-Monte-Carlo
// comparison of Table 4.1: for each size it reports the suite-total
// starting density, Goto's reduction, the reductions of six-temperature
// annealing and g = 1 at the fixed budget, and (while the exact solver
// reaches) the provably maximal reduction.
//
// §4.2.5 conclusion 2 predicts the shape: "When the amount of CPU time
// available is small, simple greedy heuristics can be expected to perform
// as well as any of the Monte Carlo methods" — and a fixed budget *is*
// small for large instances, so Goto's relative standing should improve
// with size.
func SizeSweep(p SweepParams) *Table {
	defaults := DefaultSweepParams(p.Seed)
	if len(p.Sizes) == 0 {
		p.Sizes = defaults.Sizes
	}
	if p.NetsPerCell <= 0 {
		p.NetsPerCell = defaults.NetsPerCell
	}
	if p.Instances <= 0 {
		p.Instances = defaults.Instances
	}
	if p.Budget <= 0 {
		p.Budget = defaults.Budget
	}
	t := &Table{
		Title: "Size sweep — Goto vs Monte Carlo at a fixed budget",
		Note: fmt.Sprintf("%d instances per size, %d nets per cell, %d moves per instance",
			p.Instances, p.NetsPerCell, p.Budget),
		Columns: []string{"start sum", "Goto", "6T-SA", "g = 1", "optimal"},
	}
	if p.Throughput {
		t.Columns = append(t.Columns, "moves/s")
	}
	for _, cells := range p.Sizes {
		nets := cells * p.NetsPerCell
		startSum, gotoRed, optRed := 0, 0, 0
		saRed, goneRed := 0, 0
		optKnown := cells <= exact.MaxCells

		scale := gfunc.Scale{TypicalCost: 1, TypicalDelta: 2}
		var mcMoves int64
		var mcElapsed time.Duration
		for i := 0; i < p.Instances; i++ {
			nl := netlist.RandomGraph(rng.Derive(fmt.Sprintf("sweep/%d/netlist", cells), p.Seed, uint64(i)), cells, nets)
			start := linarr.Random(nl, rng.Derive(fmt.Sprintf("sweep/%d/start", cells), p.Seed, uint64(i)))
			d0 := start.Density()
			startSum += d0
			gotoRed += d0 - linarr.MustNew(nl, gotoh.Order(nl)).Density()
			if optKnown {
				opt, err := exact.MinDensity(nl)
				if err != nil {
					optKnown = false
				} else {
					optRed += d0 - opt
				}
			}
			scale.TypicalCost = float64(max(d0, 1))
			run := func(g core.G, name string) int {
				sol := linarr.NewSolution(start.Clone(), linarr.PairwiseInterchange)
				t0 := time.Now()
				res := core.Figure1{G: g}.Run(sol, core.NewBudget(p.Budget),
					rng.Derive(fmt.Sprintf("sweep/%d/%s", cells, name), p.Seed, uint64(i)))
				mcElapsed += time.Since(t0)
				mcMoves += res.Moves
				return int(res.Reduction())
			}
			b2, _ := gfunc.ByID(2)
			saRed += run(b2.Build(b2.DefaultYs(scale)), "sa")
			goneRed += run(gfunc.One(), "gone")
		}
		cells3 := fmt.Sprintf("%d", optRed)
		if !optKnown {
			cells3 = "-"
		}
		row := []string{
			fmt.Sprintf("%d", startSum),
			fmt.Sprintf("%d", gotoRed),
			fmt.Sprintf("%d", saRed),
			fmt.Sprintf("%d", goneRed),
			cells3,
		}
		if p.Throughput {
			rate := "-"
			if s := mcElapsed.Seconds(); s > 0 {
				rate = fmt.Sprintf("%.0f", float64(mcMoves)/s)
			}
			row = append(row, rate)
		}
		t.AddTextRow(fmt.Sprintf("n=%d", cells), row...)
	}
	return t
}
