package experiment

import (
	"context"
	"fmt"
	"time"

	"mcopt/internal/core"
	"mcopt/internal/exact"
	"mcopt/internal/gfunc"
	"mcopt/internal/gotoh"
	"mcopt/internal/linarr"
	"mcopt/internal/netlist"
	"mcopt/internal/rng"
	"mcopt/internal/sched"
)

// SweepParams configures the instance-size scaling study: the paper's
// 15-element instances scaled up and down at constant net-to-cell ratio,
// with the paper's per-instance budget.
type SweepParams struct {
	// Sizes are the cell counts to sweep (default 8..40).
	Sizes []int
	// NetsPerCell keeps the paper's density regime (150/15 = 10).
	NetsPerCell int
	// Instances per size (default 10).
	Instances int
	// Budget in moves per instance per method (default the paper's 12 s).
	Budget int64
	// Seed drives generation and runs.
	Seed uint64
	// Throughput adds a wall-clock moves/sec column per size, making kernel
	// scaling regressions visible from the CLI. Off by default: the column
	// is machine-dependent, so deterministic (golden-tested) tables omit it.
	Throughput bool
	// Exec carries the execution-layer knobs (worker count, cancellation).
	Exec sched.Options
}

// DefaultSweepParams returns the published-regime defaults.
func DefaultSweepParams(seed uint64) SweepParams {
	return SweepParams{
		Sizes:       []int{8, 12, 15, 20, 30, 40},
		NetsPerCell: 10,
		Instances:   10,
		Budget:      Seconds(12),
		Seed:        seed,
	}
}

// sweepCell holds one (size, instance) measurement. Cells are independent —
// instance generation and every run derive from labels fixed by the size —
// so the sweep schedules them all at once on the shared execution layer.
type sweepCell struct {
	start     int
	gotoRed   int
	optRed    int
	optOK     bool
	saRed     int
	goneRed   int
	mcMoves   int64
	mcElapsed time.Duration
}

// SizeSweep measures how instance size moves the Goto-vs-Monte-Carlo
// comparison of Table 4.1: for each size it reports the suite-total
// starting density, Goto's reduction, the reductions of six-temperature
// annealing and g = 1 at the fixed budget, and (while the exact solver
// reaches) the provably maximal reduction.
//
// §4.2.5 conclusion 2 predicts the shape: "When the amount of CPU time
// available is small, simple greedy heuristics can be expected to perform
// as well as any of the Monte Carlo methods" — and a fixed budget *is*
// small for large instances, so Goto's relative standing should improve
// with size.
//
// On cancellation the table keeps every size whose cells all completed and
// drops the rest, so an interrupted sweep still prints a valid prefix; the
// returned error reports the interruption.
func SizeSweep(p SweepParams) (*Table, error) {
	defaults := DefaultSweepParams(p.Seed)
	if len(p.Sizes) == 0 {
		p.Sizes = defaults.Sizes
	}
	if p.NetsPerCell <= 0 {
		p.NetsPerCell = defaults.NetsPerCell
	}
	if p.Instances <= 0 {
		p.Instances = defaults.Instances
	}
	if p.Budget <= 0 {
		p.Budget = defaults.Budget
	}
	t := &Table{
		Title: "Size sweep — Goto vs Monte Carlo at a fixed budget",
		Note: fmt.Sprintf("%d instances per size, %d nets per cell, %d moves per instance",
			p.Instances, p.NetsPerCell, p.Budget),
		Columns: []string{"start sum", "Goto", "6T-SA", "g = 1", "optimal"},
	}
	if p.Throughput {
		t.Columns = append(t.Columns, "moves/s")
	}

	// RNG stream labels depend only on the size, so build them per size row
	// rather than per cell.
	type sizeLabels struct{ netlist, start, sa, gone string }
	labels := make([]sizeLabels, len(p.Sizes))
	for s, cells := range p.Sizes {
		labels[s] = sizeLabels{
			netlist: fmt.Sprintf("sweep/%d/netlist", cells),
			start:   fmt.Sprintf("sweep/%d/start", cells),
			sa:      fmt.Sprintf("sweep/%d/sa", cells),
			gone:    fmt.Sprintf("sweep/%d/gone", cells),
		}
	}

	grid := sched.Grid2{A: len(p.Sizes), B: p.Instances}
	results := make([]sweepCell, grid.N())
	rep := sched.Run(grid.N(), p.Exec, func(ctx context.Context, j int) error {
		s, i := grid.Split(j)
		cells := p.Sizes[s]
		lb := labels[s]
		c := &results[j]

		nl := netlist.RandomGraph(rng.Derive(lb.netlist, p.Seed, uint64(i)), cells, cells*p.NetsPerCell)
		start := linarr.Random(nl, rng.Derive(lb.start, p.Seed, uint64(i)))
		d0 := start.Density()
		c.start = d0
		c.gotoRed = d0 - linarr.MustNew(nl, gotoh.Order(nl)).Density()
		if cells <= exact.MaxCells {
			if opt, err := exact.MinDensity(nl); err == nil {
				c.optOK = true
				c.optRed = d0 - opt
			}
		}

		scale := gfunc.Scale{TypicalCost: float64(max(d0, 1)), TypicalDelta: 2}
		run := func(g core.G, label string) int {
			sol := linarr.NewSolution(start.Clone(), linarr.PairwiseInterchange)
			t0 := time.Now()
			res := core.Figure1{G: g}.Run(sol, core.NewBudget(p.Budget).WithContext(ctx),
				rng.Derive(label, p.Seed, uint64(i)))
			c.mcElapsed += time.Since(t0)
			c.mcMoves += res.Moves
			return int(res.Reduction())
		}
		b2, _ := gfunc.ByID(2)
		c.saRed = run(b2.Build(b2.DefaultYs(scale)), lb.sa)
		c.goneRed = run(gfunc.One(), lb.gone)
		return nil
	})

	for s, cells := range p.Sizes {
		startSum, gotoRed, optRed := 0, 0, 0
		saRed, goneRed := 0, 0
		optKnown := true
		var mcMoves int64
		var mcElapsed time.Duration
		complete := true
		for i := 0; i < p.Instances; i++ {
			j := grid.Index(s, i)
			if !rep.Completed(j) {
				complete = false
				break
			}
			c := &results[j]
			startSum += c.start
			gotoRed += c.gotoRed
			if c.optOK {
				optRed += c.optRed
			} else {
				optKnown = false
			}
			saRed += c.saRed
			goneRed += c.goneRed
			mcMoves += c.mcMoves
			mcElapsed += c.mcElapsed
		}
		if !complete {
			// An interrupted sweep keeps only whole rows: partial sums would
			// print as plausible-looking but wrong totals.
			break
		}
		optCell := fmt.Sprintf("%d", optRed)
		if !optKnown {
			optCell = "-"
		}
		row := []string{
			fmt.Sprintf("%d", startSum),
			fmt.Sprintf("%d", gotoRed),
			fmt.Sprintf("%d", saRed),
			fmt.Sprintf("%d", goneRed),
			optCell,
		}
		if p.Throughput {
			rate := "-"
			if sec := mcElapsed.Seconds(); sec > 0 {
				rate = fmt.Sprintf("%.0f", float64(mcMoves)/sec)
			}
			row = append(row, rate)
		}
		t.AddTextRow(fmt.Sprintf("n=%d", cells), row...)
	}
	return t, rep.Err()
}
