package experiment

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"mcopt/internal/checkpoint"
	"mcopt/internal/core"
	"mcopt/internal/exact"
	"mcopt/internal/gfunc"
	"mcopt/internal/gotoh"
	"mcopt/internal/linarr"
	"mcopt/internal/netlist"
	"mcopt/internal/rng"
	"mcopt/internal/sched"
)

// SweepParams configures the instance-size scaling study: the paper's
// 15-element instances scaled up and down at constant net-to-cell ratio,
// with the paper's per-instance budget.
type SweepParams struct {
	// Sizes are the cell counts to sweep (default 8..40).
	Sizes []int
	// NetsPerCell keeps the paper's density regime (150/15 = 10).
	NetsPerCell int
	// Instances per size (default 10).
	Instances int
	// Budget in moves per instance per method (default the paper's 12 s).
	Budget int64
	// Seed drives generation and runs.
	Seed uint64
	// Throughput adds wall-clock moves/sec columns per size — one per
	// engine, so Figure 1 and tempering are comparable in one table —
	// making kernel scaling regressions visible from the CLI. Off by
	// default: the columns are machine-dependent, so deterministic
	// (golden-tested) tables omit them.
	Throughput bool
	// Chains, when positive, adds a parallel-tempering lane: a g = 1 run
	// under the Tempering engine with this many chains, reported as its own
	// reduction column (and throughput column when Throughput is set).
	Chains int
	// Exec carries the execution-layer knobs (worker count, cancellation).
	Exec sched.Options
}

// DefaultSweepParams returns the published-regime defaults.
func DefaultSweepParams(seed uint64) SweepParams {
	return SweepParams{
		Sizes:       []int{8, 12, 15, 20, 30, 40},
		NetsPerCell: 10,
		Instances:   10,
		Budget:      Seconds(12),
		Seed:        seed,
	}
}

// sweepCell holds one (size, instance) measurement. Cells are independent —
// instance generation and every run derive from labels fixed by the size —
// so the sweep schedules them all at once on the shared execution layer.
type sweepCell struct {
	start   int
	gotoRed int
	optRed  int
	optOK   bool
	saRed   int
	goneRed int
	ptRed   int
	// Per-engine wall-clock accounting: the two Figure-1 runs and the
	// optional tempering run are timed separately, so the throughput
	// columns compare engines rather than blending them.
	f1Moves   int64
	f1Elapsed time.Duration
	ptMoves   int64
	ptElapsed time.Duration
}

// encode serializes the cell for the checkpoint journal: ten fixed int64
// fields plus the optOK flag. The wall-clock elapsed fields ride along so a
// resumed sweep can still print throughput columns, though those columns
// are machine-dependent and excluded from the byte-identity guarantee.
func (c *sweepCell) encode() []byte {
	p := make([]byte, 10*8+1)
	for i, v := range []int64{int64(c.start), int64(c.gotoRed), int64(c.optRed),
		int64(c.saRed), int64(c.goneRed), int64(c.ptRed),
		c.f1Moves, int64(c.f1Elapsed), c.ptMoves, int64(c.ptElapsed)} {
		binary.LittleEndian.PutUint64(p[i*8:], uint64(v))
	}
	if c.optOK {
		p[10*8] = 1
	}
	return p
}

func (c *sweepCell) decode(p []byte) error {
	if len(p) != 10*8+1 {
		return fmt.Errorf("sweep cell payload is %d bytes, want %d", len(p), 10*8+1)
	}
	v := func(i int) int64 { return int64(binary.LittleEndian.Uint64(p[i*8:])) }
	c.start, c.gotoRed, c.optRed = int(v(0)), int(v(1)), int(v(2))
	c.saRed, c.goneRed, c.ptRed = int(v(3)), int(v(4)), int(v(5))
	c.f1Moves, c.f1Elapsed = v(6), time.Duration(v(7))
	c.ptMoves, c.ptElapsed = v(8), time.Duration(v(9))
	c.optOK = p[10*8] == 1
	return nil
}

// SizeSweep measures how instance size moves the Goto-vs-Monte-Carlo
// comparison of Table 4.1: for each size it reports the suite-total
// starting density, Goto's reduction, the reductions of six-temperature
// annealing and g = 1 at the fixed budget, and (while the exact solver
// reaches) the provably maximal reduction.
//
// §4.2.5 conclusion 2 predicts the shape: "When the amount of CPU time
// available is small, simple greedy heuristics can be expected to perform
// as well as any of the Monte Carlo methods" — and a fixed budget *is*
// small for large instances, so Goto's relative standing should improve
// with size.
//
// On cancellation the table keeps every size whose cells all completed and
// drops the rest, so an interrupted sweep still prints a valid prefix; the
// returned error reports the interruption.
func SizeSweep(p SweepParams) (*Table, error) {
	defaults := DefaultSweepParams(p.Seed)
	if len(p.Sizes) == 0 {
		p.Sizes = defaults.Sizes
	}
	if p.NetsPerCell <= 0 {
		p.NetsPerCell = defaults.NetsPerCell
	}
	if p.Instances <= 0 {
		p.Instances = defaults.Instances
	}
	if p.Budget <= 0 {
		p.Budget = defaults.Budget
	}
	t := &Table{
		Title: "Size sweep — Goto vs Monte Carlo at a fixed budget",
		Note: fmt.Sprintf("%d instances per size, %d nets per cell, %d moves per instance",
			p.Instances, p.NetsPerCell, p.Budget),
		Columns: []string{"start sum", "Goto", "6T-SA", "g = 1", "optimal"},
	}
	if p.Chains > 0 {
		t.Columns = append(t.Columns, fmt.Sprintf("g=1 PT/%d", p.Chains))
	}
	if p.Throughput {
		t.Columns = append(t.Columns, "fig1 moves/s")
		if p.Chains > 0 {
			t.Columns = append(t.Columns, "PT moves/s")
		}
	}

	// RNG stream labels depend only on the size, so build them per size row
	// rather than per cell.
	type sizeLabels struct{ netlist, start, sa, gone, pt string }
	labels := make([]sizeLabels, len(p.Sizes))
	for s, cells := range p.Sizes {
		labels[s] = sizeLabels{
			netlist: fmt.Sprintf("sweep/%d/netlist", cells),
			start:   fmt.Sprintf("sweep/%d/start", cells),
			sa:      fmt.Sprintf("sweep/%d/sa", cells),
			gone:    fmt.Sprintf("sweep/%d/gone", cells),
			pt:      fmt.Sprintf("sweep/%d/pt", cells),
		}
	}

	grid := sched.Grid2{A: len(p.Sizes), B: p.Instances}
	results := make([]sweepCell, grid.N())
	exec := p.Exec
	jr, err := exec.Checkpoint.Journal("sweep", checkpoint.Fingerprint(
		"experiment.SizeSweep", fmt.Sprint(p.Sizes), fmt.Sprint(p.NetsPerCell),
		fmt.Sprint(p.Instances), fmt.Sprint(p.Budget), fmt.Sprint(p.Seed),
		fmt.Sprint(p.Chains)))
	if err != nil {
		return t, err
	}
	defer jr.Close()
	if err := jr.Restore(grid.N(), func(slot int, payload []byte) error {
		return results[slot].decode(payload)
	}); err != nil {
		return t, err
	}
	if jr != nil {
		exec.Skip = jr.Done
	}
	rep := sched.Run(grid.N(), exec, func(ctx context.Context, j int) error {
		s, i := grid.Split(j)
		cells := p.Sizes[s]
		lb := labels[s]
		c := &results[j]

		nl := netlist.RandomGraph(rng.Derive(lb.netlist, p.Seed, uint64(i)), cells, cells*p.NetsPerCell)
		start := linarr.Random(nl, rng.Derive(lb.start, p.Seed, uint64(i)))
		d0 := start.Density()
		c.start = d0
		c.gotoRed = d0 - linarr.MustNew(nl, gotoh.Order(nl)).Density()
		if cells <= exact.MaxCells {
			if opt, err := exact.MinDensity(nl); err == nil {
				c.optOK = true
				c.optRed = d0 - opt
			}
		}

		scale := gfunc.Scale{TypicalCost: float64(max(d0, 1)), TypicalDelta: 2}
		run := func(g core.G, label string) int {
			sol := linarr.NewSolution(start.Clone(), linarr.PairwiseInterchange)
			t0 := time.Now()
			res := core.Figure1{G: g}.Run(sol, core.NewBudget(p.Budget).WithContext(ctx),
				rng.Derive(label, p.Seed, uint64(i)))
			c.f1Elapsed += time.Since(t0)
			c.f1Moves += res.Moves
			return int(res.Reduction())
		}
		b2, _ := gfunc.ByID(2)
		c.saRed = run(b2.Build(b2.DefaultYs(scale)), lb.sa)
		c.goneRed = run(gfunc.One(), lb.gone)
		if p.Chains > 0 {
			sol := linarr.NewSolution(start.Clone(), linarr.PairwiseInterchange)
			t0 := time.Now()
			res := core.Tempering{G: gfunc.One(), Chains: p.Chains, Workers: 1}.Run(sol,
				core.NewBudget(p.Budget).WithContext(ctx), rng.Derive(lb.pt, p.Seed, uint64(i)))
			c.ptElapsed = time.Since(t0)
			c.ptMoves = res.Moves
			c.ptRed = int(res.Reduction())
		}
		return jr.Append(ctx, j, c.encode())
	})

	rate := func(moves int64, elapsed time.Duration) string {
		if sec := elapsed.Seconds(); sec > 0 {
			return fmt.Sprintf("%.0f", float64(moves)/sec)
		}
		return "-"
	}
	for s, cells := range p.Sizes {
		startSum, gotoRed, optRed := 0, 0, 0
		saRed, goneRed, ptRed := 0, 0, 0
		optKnown := true
		var f1Moves, ptMoves int64
		var f1Elapsed, ptElapsed time.Duration
		complete := true
		for i := 0; i < p.Instances; i++ {
			j := grid.Index(s, i)
			if !rep.Completed(j) {
				complete = false
				break
			}
			c := &results[j]
			startSum += c.start
			gotoRed += c.gotoRed
			if c.optOK {
				optRed += c.optRed
			} else {
				optKnown = false
			}
			saRed += c.saRed
			goneRed += c.goneRed
			ptRed += c.ptRed
			f1Moves += c.f1Moves
			f1Elapsed += c.f1Elapsed
			ptMoves += c.ptMoves
			ptElapsed += c.ptElapsed
		}
		if !complete {
			// An interrupted sweep keeps only whole rows: partial sums would
			// print as plausible-looking but wrong totals.
			break
		}
		optCell := fmt.Sprintf("%d", optRed)
		if !optKnown {
			optCell = "-"
		}
		row := []string{
			fmt.Sprintf("%d", startSum),
			fmt.Sprintf("%d", gotoRed),
			fmt.Sprintf("%d", saRed),
			fmt.Sprintf("%d", goneRed),
			optCell,
		}
		if p.Chains > 0 {
			row = append(row, fmt.Sprintf("%d", ptRed))
		}
		if p.Throughput {
			row = append(row, rate(f1Moves, f1Elapsed))
			if p.Chains > 0 {
				row = append(row, rate(ptMoves, ptElapsed))
			}
		}
		t.AddTextRow(fmt.Sprintf("n=%d", cells), row...)
	}
	return t, rep.Err()
}
