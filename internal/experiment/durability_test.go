package experiment

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"mcopt/internal/checkpoint"
	"mcopt/internal/core"
	"mcopt/internal/faultinject"
	"mcopt/internal/gfunc"
	"mcopt/internal/linarr"
	"mcopt/internal/sched"
	"mcopt/internal/tuner"
)

// These tests pin the durability contract end to end: a run interrupted at
// an arbitrary point — cancellation, injected IO failure, torn journal write,
// cell panic — resumes from its checkpoint journal and produces output
// byte-identical to an uninterrupted run, at any worker count.

// copyJournals clones every .wal file from src into a fresh directory, so a
// single interrupted run can seed several independent resume attempts.
func copyJournals(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// cancelAfter builds a Progress callback that cancels the run once done
// cells have been attempted.
func cancelAfter(n int, cancel context.CancelFunc) func(done, total int) {
	return func(done, total int) {
		if done >= n {
			cancel()
		}
	}
}

func TestRunCheckpointResumeByteIdentical(t *testing.T) {
	suite := smallSuite(3)
	methods := smallMethods()
	budgets := []int64{200, 400}
	cfg := Config{Seed: 3}
	golden, err := Run(suite, methods, budgets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(methods) * len(budgets) * suite.Size()

	// Interrupt a checkpointed run partway through the grid.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	icfg := cfg
	icfg.Exec = sched.Options{
		Workers:    2,
		Ctx:        ctx,
		Checkpoint: &checkpoint.Config{Dir: dir},
		Progress:   cancelAfter(n/3, cancel),
	}
	if _, err := Run(suite, methods, budgets, icfg); err == nil {
		t.Fatal("interrupted run reported no error")
	}

	// The journal must hold exactly completed cells: every recorded slot
	// carries the value the uninterrupted run produced, and the interruption
	// left the grid genuinely unfinished.
	jr, err := (&checkpoint.Config{Dir: dir, Resume: true}).
		Journal("run-"+suite.Name, runFingerprint(suite, methods, budgets, cfg))
	if err != nil {
		t.Fatal(err)
	}
	grid := sched.Grid3{A: len(methods), B: len(budgets), C: suite.Size()}
	recorded := 0
	if err := jr.RestoreInt64(grid.N(), func(slot int, v int64) {
		recorded++
		m, b, i := grid.Split(slot)
		if int(v) != golden.BestDensities[m][b][i] {
			t.Errorf("journal slot %d = %d, golden %d", slot, v, golden.BestDensities[m][b][i])
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if recorded == 0 || recorded >= n {
		t.Fatalf("journal recorded %d of %d cells, want a strict partial", recorded, n)
	}

	// Resume at several worker counts, each from its own copy of the
	// interrupted journal; every resume must reproduce the golden matrix.
	for _, workers := range []int{1, 4} {
		rdir := copyJournals(t, dir)
		rcfg := cfg
		rcfg.Exec = sched.Options{
			Workers:    workers,
			Checkpoint: &checkpoint.Config{Dir: rdir, Resume: true},
		}
		x, err := Run(suite, methods, budgets, rcfg)
		if err != nil {
			t.Fatalf("workers=%d: resume failed: %v", workers, err)
		}
		if !reflect.DeepEqual(x, golden) {
			t.Fatalf("workers=%d: resumed matrix differs from uninterrupted run", workers)
		}
	}
}

func TestTable41KillAndResumeRendersIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 4.1 grid")
	}
	budgets := []int64{60, 120}
	seed := uint64(5)
	gt, _, err := Table41(seed, budgets, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var golden bytes.Buffer
	if err := gt.Render(&golden); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	icfg := Config{Exec: sched.Options{
		Ctx:        ctx,
		Checkpoint: &checkpoint.Config{Dir: dir},
		Progress:   cancelAfter(100, cancel),
	}}
	if _, _, err := Table41(seed, budgets, icfg); err == nil {
		t.Fatal("interrupted Table41 reported no error")
	}

	rcfg := Config{Exec: sched.Options{Checkpoint: &checkpoint.Config{Dir: dir, Resume: true}}}
	rt, _, err := Table41(seed, budgets, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	if err := rt.Render(&resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed Table 4.1 differs from uninterrupted run:\n--- golden ---\n%s\n--- resumed ---\n%s",
			golden.String(), resumed.String())
	}
}

func TestTuneClassResume(t *testing.T) {
	suite := smallSuite(9)
	start := func(inst int) core.Solution {
		return linarr.NewSolution(suite.Start(inst), linarr.PairwiseInterchange)
	}
	b, _ := gfunc.ByID(2) // six-temperature annealing: NeedsY, full grid
	cfg := tuner.Config{Budget: 150, Instances: suite.Size(), Seed: 9}
	golden, err := tuner.TuneClass(b, GOLAScale(), start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(tuner.DefaultMultipliers) * suite.Size()

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	icfg := cfg
	icfg.Exec = sched.Options{
		Workers:    2,
		Ctx:        ctx,
		Checkpoint: &checkpoint.Config{Dir: dir},
		Progress:   cancelAfter(n/2, cancel),
	}
	if _, err := tuner.TuneClass(b, GOLAScale(), start, icfg); err == nil {
		t.Fatal("interrupted TuneClass reported no error")
	}

	for _, workers := range []int{1, 3} {
		rdir := copyJournals(t, dir)
		rcfg := cfg
		rcfg.Exec = sched.Options{
			Workers:    workers,
			Checkpoint: &checkpoint.Config{Dir: rdir, Resume: true},
		}
		res, err := tuner.TuneClass(b, GOLAScale(), start, rcfg)
		if err != nil {
			t.Fatalf("workers=%d: resume failed: %v", workers, err)
		}
		if !reflect.DeepEqual(res, golden) {
			t.Fatalf("workers=%d: resumed tuning result differs:\n got %+v\nwant %+v", workers, res, golden)
		}
	}
}

// TestFaultInjectionRecovery drives a checkpointed run into every injectable
// crash window — failed append, torn journal write, failed fsync, cell panic,
// forced cancellation — and verifies that a clean resume reproduces the
// uninterrupted matrix exactly.
func TestFaultInjectionRecovery(t *testing.T) {
	suite := smallSuite(11)
	methods := smallMethods()
	budgets := []int64{150}
	cfg := Config{Seed: 11}
	golden, err := Run(suite, methods, budgets, cfg)
	if err != nil {
		t.Fatal(err)
	}

	specs := []string{
		"checkpoint.append:1:error",
		"checkpoint.append:5:error",
		"checkpoint.write:1:shortwrite",
		"checkpoint.write:4:shortwrite",
		"checkpoint.sync:2:error",
		"checkpoint.sync:7:error",
		"sched.cell:1:panic",
		"sched.cell:6:panic",
		"sched.cell:3:cancel",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			faultinject.RegisterCancel(cancel)
			defer faultinject.RegisterCancel(nil)
			if err := faultinject.Set(spec); err != nil {
				t.Fatal(err)
			}
			icfg := cfg
			icfg.Exec = sched.Options{
				Workers:    1, // deterministic hit ordering for the Nth-call rules
				Ctx:        ctx,
				Checkpoint: &checkpoint.Config{Dir: dir},
			}
			_, ierr := Run(suite, methods, budgets, icfg)
			faultinject.Reset()
			if ierr == nil {
				t.Fatal("faulted run reported no error")
			}

			rcfg := cfg
			rcfg.Exec = sched.Options{Checkpoint: &checkpoint.Config{Dir: dir, Resume: true}}
			x, err := Run(suite, methods, budgets, rcfg)
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if !reflect.DeepEqual(x, golden) {
				t.Fatal("resumed matrix differs from uninterrupted run")
			}
		})
	}
}

// TestCheckpointRefusesSecondFreshRun pins the no-overwrite contract at the
// run-surface level: starting over in a directory that already holds a
// journal requires an explicit Resume.
func TestCheckpointRefusesSecondFreshRun(t *testing.T) {
	suite := smallSuite(2)
	methods := smallMethods()
	budgets := []int64{100}
	dir := t.TempDir()
	cfg := Config{Seed: 2, Exec: sched.Options{Checkpoint: &checkpoint.Config{Dir: dir}}}
	if _, err := Run(suite, methods, budgets, cfg); err != nil {
		t.Fatal(err)
	}
	_, err := Run(suite, methods, budgets, cfg)
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("second fresh run got %v, want already-exists refusal", err)
	}
}

// TestSweepResumeKeepsWholeRowLogic checks the interaction between restored
// cells and SizeSweep's whole-row completeness rule: restored slots count as
// completed, so a resumed sweep prints every row, identically to an
// uninterrupted one.
func TestSweepResumeKeepsWholeRowLogic(t *testing.T) {
	p := SweepParams{Sizes: []int{6, 8}, NetsPerCell: 4, Instances: 3, Budget: 120, Seed: 4}
	gt, err := SizeSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	var golden bytes.Buffer
	if err := gt.Render(&golden); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ip := p
	ip.Exec = sched.Options{
		Workers:    1,
		Ctx:        ctx,
		Checkpoint: &checkpoint.Config{Dir: dir},
		Progress:   cancelAfter(3, cancel),
	}
	if _, err := SizeSweep(ip); err == nil {
		t.Fatal("interrupted sweep reported no error")
	}

	rp := p
	rp.Exec = sched.Options{Checkpoint: &checkpoint.Config{Dir: dir, Resume: true}}
	rt, err := SizeSweep(rp)
	if err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	if err := rt.Render(&resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed sweep differs:\n--- golden ---\n%s\n--- resumed ---\n%s",
			golden.String(), resumed.String())
	}
}

// TestResumedRunExecutesOnlyMissingCells verifies restored cells are skipped,
// not recomputed: the resumed run performs exactly the remaining work.
func TestResumedRunExecutesOnlyMissingCells(t *testing.T) {
	suite := smallSuite(7)
	methods := smallMethods()
	budgets := []int64{100}
	cfg := Config{Seed: 7}
	n := len(methods) * len(budgets) * suite.Size()

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := n / 2
	icfg := cfg
	icfg.Exec = sched.Options{
		Workers:    1,
		Ctx:        ctx,
		Checkpoint: &checkpoint.Config{Dir: dir},
		Progress:   cancelAfter(stop, cancel),
	}
	if _, err := Run(suite, methods, budgets, icfg); err == nil {
		t.Fatal("interrupted run reported no error")
	}

	// Count cells the resume actually attempts (restored cells bypass the
	// Progress-visible path only if skipped; Skip still reports progress, so
	// count executed work through a second journal's growth instead).
	jr, err := (&checkpoint.Config{Dir: dir, Resume: true}).
		Journal("run-"+suite.Name, runFingerprint(suite, methods, budgets, cfg))
	if err != nil {
		t.Fatal(err)
	}
	restored := jr.Len()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if restored == 0 || restored >= n {
		t.Fatalf("restored %d of %d, want strict partial", restored, n)
	}

	var progressed atomic.Int64
	rcfg := cfg
	rcfg.Exec = sched.Options{
		Workers:    1,
		Checkpoint: &checkpoint.Config{Dir: dir, Resume: true},
		Progress:   func(done, total int) { progressed.Store(int64(done)) },
	}
	if _, err := Run(suite, methods, budgets, rcfg); err != nil {
		t.Fatal(err)
	}
	// Progress counts skipped and executed cells alike; total must be the
	// full grid, confirming restored cells flowed through the Skip path.
	if got := progressed.Load(); got != int64(n) {
		t.Fatalf("resume progressed %d cells, want %d", got, n)
	}
	jr2, err := (&checkpoint.Config{Dir: dir, Resume: true}).
		Journal("run-"+suite.Name, runFingerprint(suite, methods, budgets, cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if jr2.Len() != n {
		t.Fatalf("journal holds %d of %d cells after resume", jr2.Len(), n)
	}
}
