package experiment

import (
	"strings"
	"testing"

	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/netlist"
)

// smallMethods is a fast three-row method set for runner tests.
func smallMethods() []Method {
	scale := GOLAScale()
	b3, _ := gfunc.ByID(3)   // g = 1
	b2, _ := gfunc.ByID(2)   // six temperature annealing
	b15, _ := gfunc.ByID(15) // cubic diff
	return []Method{
		ClassMethod(b3, scale, nil),
		ClassMethod(b2, scale, nil),
		ClassMethod(b15, scale, nil),
	}
}

func smallSuite(seed uint64) *Suite {
	p := GOLAParams()
	p.Instances = 6
	return NewSuite(p, seed)
}

func TestRunMatrixShapeAndBounds(t *testing.T) {
	suite := smallSuite(1)
	budgets := []int64{500, 1500}
	x, _ := Run(suite, smallMethods(), budgets, Config{Seed: 1})
	if len(x.BestDensities) != 3 {
		t.Fatalf("method dim = %d", len(x.BestDensities))
	}
	for m := range x.BestDensities {
		if len(x.BestDensities[m]) != 2 {
			t.Fatalf("budget dim = %d", len(x.BestDensities[m]))
		}
		for b := range x.BestDensities[m] {
			if len(x.BestDensities[m][b]) != suite.Size() {
				t.Fatalf("instance dim = %d", len(x.BestDensities[m][b]))
			}
			for i, d := range x.BestDensities[m][b] {
				if d < 0 || d > x.StartDensities[i] {
					t.Fatalf("method %d budget %d instance %d: best density %d outside [0, start %d]",
						m, b, i, d, x.StartDensities[i])
				}
			}
			if x.Reduction(m, b) < 0 {
				t.Fatalf("negative total reduction for method %d budget %d", m, b)
			}
		}
	}
}

func TestRunParallelEqualsSequential(t *testing.T) {
	suite := smallSuite(2)
	budgets := []int64{800}
	par, _ := Run(suite, smallMethods(), budgets, Config{Seed: 5})
	seq, _ := Run(suite, smallMethods(), budgets, Config{Seed: 5, Sequential: true})
	for m := range par.BestDensities {
		for i := range par.BestDensities[m][0] {
			if par.BestDensities[m][0][i] != seq.BestDensities[m][0][i] {
				t.Fatalf("parallel and sequential runs diverged at method %d instance %d", m, i)
			}
		}
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	suite := smallSuite(3)
	a, _ := Run(suite, smallMethods(), []int64{600}, Config{Seed: 9})
	b, _ := Run(suite, smallMethods(), []int64{600}, Config{Seed: 9})
	for m := range a.BestDensities {
		for i := range a.BestDensities[m][0] {
			if a.BestDensities[m][0][i] != b.BestDensities[m][0][i] {
				t.Fatal("same-seed runs diverged")
			}
		}
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	suite := smallSuite(4)
	a, _ := Run(suite, smallMethods(), []int64{600}, Config{Seed: 1})
	b, _ := Run(suite, smallMethods(), []int64{600}, Config{Seed: 2})
	same := true
	for m := range a.BestDensities {
		for i := range a.BestDensities[m][0] {
			if a.BestDensities[m][0][i] != b.BestDensities[m][0][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices (suspicious)")
	}
}

func TestRunFig2Strategy(t *testing.T) {
	suite := smallSuite(5)
	methods := smallMethods()
	for i := range methods {
		methods[i] = methods[i].WithStrategy(Fig2)
	}
	x, _ := Run(suite, methods, []int64{2000}, Config{Seed: 1})
	for m := range methods {
		if x.Reduction(m, 0) <= 0 {
			t.Fatalf("Figure-2 method %q made no progress", methods[m].Name)
		}
	}
}

func TestMethodNamesAndSurvivors(t *testing.T) {
	all := AllMethods(GOLAScale(), nil)
	if len(all) != 21 {
		t.Fatalf("AllMethods returned %d rows, want 21", len(all))
	}
	if all[0].Name != "[COHO83a]" {
		t.Fatalf("first row = %q, want [COHO83a]", all[0].Name)
	}
	surv := SurvivingMethods(GOLAScale(), nil)
	if len(surv) != 13 {
		t.Fatalf("SurvivingMethods returned %d rows, want 13", len(surv))
	}
	for _, m := range surv {
		for _, dropped := range []string{"Linear", "Quadratic", "Cubic", "Exponential",
			"6 Linear", "6 Quadratic", "6 Cubic", "6 Exponential"} {
			if m.Name == dropped {
				t.Fatalf("dropped class %q present in survivors", dropped)
			}
		}
	}
}

func TestTunedMultiplierApplied(t *testing.T) {
	b, _ := gfunc.ByID(1) // Metropolis
	nl := netlist.MustNew(2, [][]int{{0, 1}})
	mDefault := ClassMethod(b, GOLAScale(), nil)
	mScaled := ClassMethod(b, GOLAScale(), map[int]float64{1: 4})
	// A 4x hotter Metropolis must accept a fixed uphill move more often.
	pd := mDefault.NewG(nl).Prob(1, 80, 84)
	ps := mScaled.NewG(nl).Prob(1, 80, 84)
	if ps <= pd {
		t.Fatalf("tuned multiplier not applied: default %g, scaled %g", pd, ps)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Note:    "n",
		Columns: []string{"6 sec", "9 sec"},
	}
	tab.AddRow("g = 1", 598, 605)
	tab.AddTextRow("Goto", "601", "-")
	out := tab.String()
	for _, want := range []string{"g function", "6 sec", "9 sec", "598", "601", "-", "T", "n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("rendered table has %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestStrategyKindString(t *testing.T) {
	if Fig1.String() != "Figure 1" || Fig2.String() != "Figure 2" {
		t.Fatal("StrategyKind strings wrong")
	}
	if StrategyKind(9).String() != "unknown" {
		t.Fatal("unknown strategy string wrong")
	}
}

func TestRunWithCounterN(t *testing.T) {
	// Config.N threads the paper's rejection counter through to the engine:
	// with a tiny N and a never-accepting class, runs stop early.
	suite := smallSuite(9)
	method := Method{
		Name:     "frozen",
		Strategy: Fig1,
		NewG:     func(*netlist.Netlist) core.G { return gfunc.Metropolis(1e-9) },
	}
	x, _ := Run(suite, []Method{method}, []int64{100000}, Config{Seed: 1, N: 5})
	for i, d := range x.BestDensities[0][0] {
		if d < 0 || d > x.StartDensities[i] {
			t.Fatalf("instance %d: density %d out of range", i, d)
		}
	}
	// With N=5 at k=1 the frozen runs complete long before the budget; the
	// observable effect is simply that results remain valid. Determinism
	// across the N path:
	y, _ := Run(suite, []Method{method}, []int64{100000}, Config{Seed: 1, N: 5})
	for i := range x.BestDensities[0][0] {
		if x.BestDensities[0][0][i] != y.BestDensities[0][0][i] {
			t.Fatal("N-counter path not deterministic")
		}
	}
}
