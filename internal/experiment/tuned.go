package experiment

// Tuned schedule multipliers, produced by the §4.2.1 grid search
// (cmd/olatune) over the GOLA 30-instance suite at seed 1 with the paper's
// 5-second (1000-move) tuning budget. A class's default schedule
// (gfunc.Builder.DefaultYs at the family's Scale) is multiplied by its
// entry; classes without an entry use multiplier 1.
//
// The paper: "The Yᵢs that gave the best results on the above test data were
// used for further experimenting" (§4.2.1), and for NOLA: "The temperatures
// used for this problem are the same as those used for the GOLA problem"
// (§4.3.1) — so TunedNOLA aliases the GOLA multipliers, re-anchored only
// through the family Scale. Classes 3 and 4 (g = 1, Two Level g) have no
// temperatures to tune — the property §5 singles out.
//
// EXPERIMENTS.md records the full grids these values came from, including a
// wide-grid run (cmd/olatune -wide): unbounded, every weak class tunes to a
// schedule cold enough to degenerate into pure descent, which collapses the
// comparison — so the search is bounded to genuinely-Monte-Carlo settings
// (see tuner.DefaultMultipliers).
var (
	// TunedGOLA holds multipliers for the GOLA family.
	TunedGOLA = map[int]float64{
		1:  0.7, // Metropolis
		2:  0.5, // Six Temperature Annealing
		5:  0.5, // Linear
		6:  0.7, // Quadratic
		7:  0.7, // Cubic
		8:  2,   // Exponential
		9:  0.5, // 6 Linear
		10: 0.5, // 6 Quadratic
		11: 0.5, // 6 Cubic
		12: 2,   // 6 Exponential
		13: 0.5, // Linear Diff
		14: 0.5, // Quadratic Diff
		15: 0.7, // Cubic Diff
		16: 0.5, // Exponential Diff
		17: 0.7, // 6 Linear Diff
		18: 0.5, // 6 Quadratic Diff
		19: 0.5, // 6 Cubic Diff
		20: 0.5, // 6 Exponential Diff
	}

	// TunedNOLA holds multipliers for the NOLA family (inherited from GOLA
	// per §4.3.1).
	TunedNOLA = TunedGOLA
)
