package experiment

import (
	"testing"

	"mcopt/internal/stats"
)

func TestSuiteDeterministic(t *testing.T) {
	a := NewSuite(GOLAParams(), 7)
	b := NewSuite(GOLAParams(), 7)
	if a.StartDensitySum() != b.StartDensitySum() {
		t.Fatal("same seed produced different suites")
	}
	for i := 0; i < a.Size(); i++ {
		if !stats.EqualInts(a.Starts[i], b.Starts[i]) {
			t.Fatalf("instance %d starts differ", i)
		}
	}
	c := NewSuite(GOLAParams(), 8)
	if a.StartDensitySum() == c.StartDensitySum() {
		t.Fatal("different seeds produced identical start sums (suspicious)")
	}
}

func TestGOLASuiteMatchesPaperRegime(t *testing.T) {
	// The paper's GOLA suite had a random starting density sum of 2594
	// (≈86.5 per instance). Our regenerated suite must land in the same
	// regime: 15 cells, 150 two-pin nets.
	s := NewSuite(GOLAParams(), 1)
	if s.Size() != 30 {
		t.Fatalf("suite size %d, want 30", s.Size())
	}
	sum := s.StartDensitySum()
	if sum < 2300 || sum > 2900 {
		t.Fatalf("GOLA start density sum = %d, want within [2300, 2900] (paper: 2594)", sum)
	}
	for i, nl := range s.Netlists {
		if nl.NumCells() != 15 || nl.NumNets() != 150 || !nl.IsGraph() {
			t.Fatalf("instance %d is not a 15-cell/150-net graph", i)
		}
	}
}

func TestNOLASuiteMatchesPaperRegime(t *testing.T) {
	// Paper: NOLA random starting density sum 4254 (≈142 per instance).
	s := NewSuite(NOLAParams(), 1)
	sum := s.StartDensitySum()
	if sum < 3800 || sum > 4700 {
		t.Fatalf("NOLA start density sum = %d, want within [3800, 4700] (paper: 4254)", sum)
	}
	multi := false
	for _, nl := range s.Netlists {
		if !nl.IsGraph() {
			multi = true
		}
	}
	if !multi {
		t.Fatal("NOLA suite contains no multi-pin nets")
	}
}

func TestWithGotoStartsImproves(t *testing.T) {
	s := NewSuite(GOLAParams(), 2)
	g := s.WithGotoStarts()
	if g.StartDensitySum() >= s.StartDensitySum() {
		t.Fatalf("Goto starts (%d) not below random starts (%d)",
			g.StartDensitySum(), s.StartDensitySum())
	}
	if len(g.Netlists) != len(s.Netlists) {
		t.Fatal("WithGotoStarts changed the instance set")
	}
}

func TestStartReturnsFreshCopies(t *testing.T) {
	s := NewSuite(GOLAParams(), 3)
	a := s.Start(0)
	a.EvalSwap(0, 1).Apply()
	b := s.Start(0)
	if !stats.EqualInts(b.Order(), s.Starts[0]) {
		t.Fatal("mutating one Start() arrangement leaked into the suite")
	}
}

func TestSecondsConversion(t *testing.T) {
	if Seconds(6) != 6*MovesPerVAXSecond {
		t.Fatalf("Seconds(6) = %d", Seconds(6))
	}
	bs := PaperBudgets(1)
	if len(bs) != 3 || bs[0] != Seconds(6) || bs[1] != Seconds(9) || bs[2] != Seconds(12) {
		t.Fatalf("PaperBudgets(1) = %v", bs)
	}
	half := PaperBudgets(0.5)
	if half[0] != Seconds(3) {
		t.Fatalf("PaperBudgets(0.5)[0] = %d, want %d", half[0], Seconds(3))
	}
}
