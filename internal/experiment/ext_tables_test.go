package experiment

import (
	"testing"

	"mcopt/internal/sched"
)

func TestPartitionTableShape(t *testing.T) {
	tab, _ := PartitionTable(1, 3, 24, 72, []int64{1000, 3000}, sched.Options{})
	if len(tab.Rows) != 24 { // 21 Monte Carlo + restarts + KL + FM
		t.Fatalf("partition table has %d rows, want 24", len(tab.Rows))
	}
	if tab.Rows[0].Label != "[COHO83a]" {
		t.Fatalf("first row %q", tab.Rows[0].Label)
	}
	if tab.Rows[21].Label != "Descent restarts" || tab.Rows[22].Label != "Kernighan-Lin" ||
		tab.Rows[23].Label != "Fiduccia-Mattheyses" {
		t.Fatalf("baseline rows wrong: %q, %q, %q", tab.Rows[21].Label, tab.Rows[22].Label, tab.Rows[23].Label)
	}
	for _, r := range tab.Rows {
		if red := cellInt(t, r, 0); red < 0 {
			t.Fatalf("%s: negative reduction %d", r.Label, red)
		}
	}
}

func TestTSPTableShape(t *testing.T) {
	tab, _ := TSPTable(1, 3, 30, []int64{1000, 4000}, sched.Options{})
	if len(tab.Rows) != 24 { // 21 Monte Carlo + 3 baselines
		t.Fatalf("TSP table has %d rows, want 24", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r.Label] = r.Cells
	}
	lin := byName["2-opt restarts [LIN73]"]
	sa := byName["Six Temperature Annealing"]
	if lin == nil || sa == nil {
		t.Fatal("expected rows missing")
	}
	// [GOLD84] shape at the larger budget: 2-opt restarts below annealing.
	linV, saV := atoi(t, lin[1]), atoi(t, sa[1])
	if linV >= saV {
		t.Fatalf("2-opt restarts (%d) not below annealing (%d)", linV, saV)
	}
	// Constructives are budget-independent: both columns equal.
	hull := byName["Hull insertion [STEW77]"]
	if hull[0] != hull[1] {
		t.Fatalf("hull insertion depends on budget: %v", hull)
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	return cellInt(t, TableRow{Label: "x", Cells: []string{s}}, 0)
}

func TestExtTablesDeterministic(t *testing.T) {
	a, _ := PartitionTable(2, 2, 16, 48, []int64{600}, sched.Options{})
	b, _ := PartitionTable(2, 2, 16, 48, []int64{600}, sched.Options{})
	if a.String() != b.String() {
		t.Fatal("partition table not deterministic")
	}
}

func TestCohoonBestShape(t *testing.T) {
	tab, _ := CohoonBest(1, []int64{600, 1200}, sched.Options{})
	if len(tab.Rows) != 4 { // 3 variants + (optimal)
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	table41Row := cellInt(t, tab.Rows[0], 1)
	best := cellInt(t, tab.Rows[2], 1)
	// §4.2.2's "presumably ... greater": the Goto-start single-exchange
	// Figure-2 configuration must beat the Table-4.1 configuration (it
	// includes Goto's own reduction).
	if best <= table41Row {
		t.Fatalf("their best (%d) not above the Table 4.1 row (%d)", best, table41Row)
	}
	opt := cellInt(t, tab.Rows[3], 1)
	for i := 0; i < 3; i++ {
		if cellInt(t, tab.Rows[i], 1) > opt {
			t.Fatalf("variant %d exceeds proven optimum", i)
		}
	}
}
