// Package experiment regenerates the paper's evaluation: Tables 4.1 and
// 4.2(a)–(d) over 30-instance GOLA/NOLA suites, with the paper's
// equal-computing-time control expressed as deterministic move budgets.
package experiment

import (
	"fmt"

	"mcopt/internal/gotoh"
	"mcopt/internal/linarr"
	"mcopt/internal/netlist"
	"mcopt/internal/rng"
)

// MovesPerVAXSecond converts the paper's VAX 11/780 CPU seconds into move
// budgets: 6 s → 1 200 attempted perturbations. The constant was calibrated
// so that the regenerated Table 4.1 reproduces the paper's differentiation
// (see EXPERIMENTS.md): at much larger budgets every Monte Carlo method
// saturates to the same optima and the paper's ranking disappears, while at
// this scale the Goto-vs-Monte-Carlo crossover, the weakness of the value
// classes, and the §4.2.2 leaders all match. It is also consistent with a
// ~0.5 MIPS VAX running Pascal ("about 20 seconds to find a local optima"
// ≈ 4 000 evaluations against our 300–600 per random-start descent). Every
// method sees the same conversion, which is all the paper's fairness
// control requires.
const MovesPerVAXSecond = 200

// Seconds converts paper-quoted CPU seconds into a move budget.
func Seconds(s float64) int64 { return int64(s * MovesPerVAXSecond) }

// Suite is a fixed set of problem instances, each with a fixed starting
// arrangement shared by every method ("Each g class used the same initial
// arrangement", §4.2.1).
type Suite struct {
	// Name labels the suite in table titles, e.g. "GOLA".
	Name string
	// Netlists holds the instances.
	Netlists []*netlist.Netlist
	// Starts[i] is the starting cell order for instance i.
	Starts [][]int
}

// SuiteParams describes a random instance family.
type SuiteParams struct {
	Name      string
	Instances int
	Cells     int
	Nets      int
	// MinPins/MaxPins bound net sizes; 2/2 yields a GOLA (graph) suite.
	MinPins, MaxPins int
}

// GOLAParams are the paper's §4.2.1 settings: "30 random GOLA instances.
// Each instance consisted of 15 circuit elements and 150 two pin nets."
func GOLAParams() SuiteParams {
	return SuiteParams{Name: "GOLA", Instances: 30, Cells: 15, Nets: 150, MinPins: 2, MaxPins: 2}
}

// NOLAParams are the §4.3.1 settings: 30 instances, 15 elements, 150 nets,
// with multi-pin nets (2–8 pins) sized so that random-start densities fall
// in the regime of the paper's Table 4.2(c) starting sum.
func NOLAParams() SuiteParams {
	return SuiteParams{Name: "NOLA", Instances: 30, Cells: 15, Nets: 150, MinPins: 2, MaxPins: 8}
}

// NewSuite generates a suite with random starting arrangements. The same
// (params, seed) pair always regenerates the identical suite.
func NewSuite(p SuiteParams, seed uint64) *Suite {
	s := &Suite{
		Name:     p.Name,
		Netlists: make([]*netlist.Netlist, p.Instances),
		Starts:   make([][]int, p.Instances),
	}
	for i := range s.Netlists {
		gen := rng.Derive("suite/"+p.Name+"/netlist", seed, uint64(i))
		if p.MinPins == 2 && p.MaxPins == 2 {
			s.Netlists[i] = netlist.RandomGraph(gen, p.Cells, p.Nets)
		} else {
			s.Netlists[i] = netlist.RandomHyper(gen, p.Cells, p.Nets, p.MinPins, p.MaxPins)
		}
		order := make([]int, p.Cells)
		rng.Perm(rng.Derive("suite/"+p.Name+"/start", seed, uint64(i)), order)
		s.Starts[i] = order
	}
	return s
}

// WithGotoStarts returns a suite over the same netlists whose starting
// arrangements are Goto's constructive orders (§4.2.3, §4.3.1).
func (s *Suite) WithGotoStarts() *Suite {
	out := &Suite{
		Name:     s.Name + "/goto-start",
		Netlists: s.Netlists,
		Starts:   make([][]int, len(s.Netlists)),
	}
	for i, nl := range s.Netlists {
		out.Starts[i] = gotoh.Order(nl)
	}
	return out
}

// Size returns the number of instances.
func (s *Suite) Size() int { return len(s.Netlists) }

// Start returns a fresh arrangement of instance i in its starting order.
func (s *Suite) Start(i int) *linarr.Arrangement {
	return linarr.MustNew(s.Netlists[i], s.Starts[i])
}

// StartDensities returns the density of each starting arrangement.
func (s *Suite) StartDensities() []int {
	out := make([]int, s.Size())
	for i := range out {
		out[i] = s.Start(i).Density()
	}
	return out
}

// StartDensitySum returns the suite's total starting density — the paper's
// "sum of the densities of the starting arrangements" (2594 for its GOLA
// suite, 4254 for NOLA).
func (s *Suite) StartDensitySum() int {
	total := 0
	for _, d := range s.StartDensities() {
		total += d
	}
	return total
}

// String implements fmt.Stringer.
func (s *Suite) String() string {
	return fmt.Sprintf("%s suite (%d instances)", s.Name, s.Size())
}
