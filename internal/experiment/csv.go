package experiment

import (
	"bufio"
	"fmt"
	"io"
)

// WriteCSV emits the matrix's raw per-instance measurements in long format,
// one row per (method, budget, instance):
//
//	suite,method,budget,instance,start_density,best_density,reduction
//
// This is the machine-readable companion of the rendered tables, for
// external statistics or plotting.
func (x *Matrix) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("suite,method,budget,instance,start_density,best_density,reduction\n"); err != nil {
		return err
	}
	for m, name := range x.MethodNames {
		for b, budget := range x.Budgets {
			for i, best := range x.BestDensities[m][b] {
				start := x.StartDensities[i]
				if _, err := fmt.Fprintf(bw, "%s,%s,%d,%d,%d,%d,%d\n",
					csvField(x.SuiteName), csvField(name), budget, i, start, best, start-best); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// csvField quotes a value when needed (method names contain no commas today,
// but "[COHO83a]" style labels are caller-supplied).
func csvField(s string) string {
	for _, r := range s {
		if r == ',' || r == '"' || r == '\n' {
			quoted := `"`
			for _, q := range s {
				if q == '"' {
					quoted += `""`
				} else {
					quoted += string(q)
				}
			}
			return quoted + `"`
		}
	}
	return s
}
