package experiment

import (
	"runtime"
	"testing"

	"mcopt/internal/sched"
)

// These tests pin the scheduler's central contract: the rendered table text
// is byte-identical at every worker count. They run each surface once at
// Workers: 1 (strictly sequential) and once at Workers: GOMAXPROCS, and
// compare the full strings. Under `go test -race` they double as a data-race
// probe for the ported run loops.

func execWidths() (one, all sched.Options) {
	return sched.Options{Workers: 1}, sched.Options{Workers: runtime.GOMAXPROCS(0)}
}

func TestTable41ByteIdenticalAcrossWorkerCounts(t *testing.T) {
	one, all := execWidths()
	seqTab, _, err := Table41(1, []int64{120, 240}, Config{Exec: one})
	if err != nil {
		t.Fatal(err)
	}
	parTab, _, err := Table41(1, []int64{120, 240}, Config{Exec: all})
	if err != nil {
		t.Fatal(err)
	}
	if seqTab.String() != parTab.String() {
		t.Fatalf("Table 4.1 differs between 1 and %d workers.\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
			runtime.GOMAXPROCS(0), seqTab.String(), runtime.GOMAXPROCS(0), parTab.String())
	}
}

func TestPartitionComparisonByteIdenticalAcrossWorkerCounts(t *testing.T) {
	one, all := execWidths()
	seqTab, err := PartitionComparison(3, 4, 24, 60, 2000, one)
	if err != nil {
		t.Fatal(err)
	}
	parTab, err := PartitionComparison(3, 4, 24, 60, 2000, all)
	if err != nil {
		t.Fatal(err)
	}
	if seqTab.String() != parTab.String() {
		t.Fatalf("X1 partition table differs between worker counts.\n--- workers=1 ---\n%s\n--- parallel ---\n%s",
			seqTab.String(), parTab.String())
	}
}

func TestSizeSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	one, all := execWidths()
	p := SweepParams{Sizes: []int{6, 10}, NetsPerCell: 8, Instances: 3, Budget: 500, Seed: 2}
	p.Exec = one
	seqTab, err := SizeSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Exec = all
	parTab, err := SizeSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if seqTab.String() != parTab.String() {
		t.Fatalf("size sweep differs between worker counts.\n--- workers=1 ---\n%s\n--- parallel ---\n%s",
			seqTab.String(), parTab.String())
	}
}
