package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcopt/internal/stats"
)

func TestSuiteSaveLoadRoundTrip(t *testing.T) {
	p := GOLAParams()
	p.Instances = 5
	orig := NewSuite(p, 42)
	dir := t.TempDir()
	if err := SaveSuite(dir, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSuite(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Size() != orig.Size() {
		t.Fatalf("identity changed: %q/%d vs %q/%d", back.Name, back.Size(), orig.Name, orig.Size())
	}
	for i := 0; i < orig.Size(); i++ {
		if !stats.EqualInts(back.Starts[i], orig.Starts[i]) {
			t.Fatalf("instance %d start changed", i)
		}
		if back.Start(i).Density() != orig.Start(i).Density() {
			t.Fatalf("instance %d density changed", i)
		}
	}
	// Running a method on the reloaded suite must reproduce the original
	// matrix exactly.
	a, _ := Run(orig, smallMethods(), []int64{300}, Config{Seed: 1})
	b, _ := Run(back, smallMethods(), []int64{300}, Config{Seed: 1})
	// Suite name feeds the stream derivation, so they must match too.
	for m := range a.BestDensities {
		for i := range a.BestDensities[m][0] {
			if a.BestDensities[m][0][i] != b.BestDensities[m][0][i] {
				t.Fatal("reloaded suite produced different results")
			}
		}
	}
}

func TestLoadSuiteErrors(t *testing.T) {
	if _, err := LoadSuite(t.TempDir()); err == nil {
		t.Fatal("empty directory loaded")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "suite.txt"), []byte("name x\ninstances 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSuite(dir); err == nil {
		t.Fatal("suite with missing instances loaded")
	}
	// Corrupt start order.
	if err := os.WriteFile(filepath.Join(dir, "instance_000.nl"), []byte("cells 3\nnet 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "start_000.txt"), []byte("0 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSuite(dir); err == nil {
		t.Fatal("suite with invalid start order loaded")
	}
}

func TestMatrixWriteCSV(t *testing.T) {
	suite := smallSuite(7)
	x, _ := Run(suite, smallMethods(), []int64{200}, Config{Seed: 7})
	var buf bytes.Buffer
	if err := x.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 3 methods x 1 budget x 6 instances.
	if len(lines) != 1+3*6 {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), 1+3*6, out)
	}
	if lines[0] != "suite,method,budget,instance,start_density,best_density,reduction" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "GOLA,") {
			t.Fatalf("row missing suite name: %q", l)
		}
		if strings.Count(l, ",") != 6 {
			t.Fatalf("row has wrong arity: %q", l)
		}
	}
}

func TestCSVFieldQuoting(t *testing.T) {
	if got := csvField("plain"); got != "plain" {
		t.Fatalf("plain field quoted: %q", got)
	}
	if got := csvField(`a,"b`); got != `"a,""b"` {
		t.Fatalf("quoting = %q", got)
	}
}

func TestSuiteSaveLoadGotoStartsAndNOLA(t *testing.T) {
	nola := NewSuite(SuiteParams{Name: "NOLA", Instances: 3, Cells: 10, Nets: 40, MinPins: 2, MaxPins: 5}, 9).
		WithGotoStarts()
	dir := t.TempDir()
	if err := SaveSuite(dir, nola); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSuite(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != nola.Name {
		t.Fatalf("name %q, want %q", back.Name, nola.Name)
	}
	for i := 0; i < nola.Size(); i++ {
		if back.Start(i).Density() != nola.Start(i).Density() {
			t.Fatalf("instance %d density changed through save/load", i)
		}
		if !back.Netlists[i].IsGraph() == nola.Netlists[i].IsGraph() {
			t.Fatalf("instance %d pin structure changed", i)
		}
	}
}
