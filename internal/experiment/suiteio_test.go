package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcopt/internal/stats"
)

func TestSuiteSaveLoadRoundTrip(t *testing.T) {
	p := GOLAParams()
	p.Instances = 5
	orig := NewSuite(p, 42)
	dir := t.TempDir()
	if err := SaveSuite(dir, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSuite(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Size() != orig.Size() {
		t.Fatalf("identity changed: %q/%d vs %q/%d", back.Name, back.Size(), orig.Name, orig.Size())
	}
	for i := 0; i < orig.Size(); i++ {
		if !stats.EqualInts(back.Starts[i], orig.Starts[i]) {
			t.Fatalf("instance %d start changed", i)
		}
		if back.Start(i).Density() != orig.Start(i).Density() {
			t.Fatalf("instance %d density changed", i)
		}
	}
	// Running a method on the reloaded suite must reproduce the original
	// matrix exactly.
	a, _ := Run(orig, smallMethods(), []int64{300}, Config{Seed: 1})
	b, _ := Run(back, smallMethods(), []int64{300}, Config{Seed: 1})
	// Suite name feeds the stream derivation, so they must match too.
	for m := range a.BestDensities {
		for i := range a.BestDensities[m][0] {
			if a.BestDensities[m][0][i] != b.BestDensities[m][0][i] {
				t.Fatal("reloaded suite produced different results")
			}
		}
	}
}

func TestLoadSuiteErrors(t *testing.T) {
	if _, err := LoadSuite(t.TempDir()); err == nil {
		t.Fatal("empty directory loaded")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "suite.txt"), []byte("name x\ninstances 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSuite(dir); err == nil {
		t.Fatal("suite with missing instances loaded")
	}
	// Corrupt start order.
	if err := os.WriteFile(filepath.Join(dir, "instance_000.nl"), []byte("cells 3\nnet 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "start_000.txt"), []byte("0 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSuite(dir); err == nil {
		t.Fatal("suite with invalid start order loaded")
	}
}

// TestLoadSuiteStrictManifest covers the hardened manifest parser: anything
// but well-formed "name"/"instances" directives is rejected with an error
// naming suite.txt, never silently skipped.
func TestLoadSuiteStrictManifest(t *testing.T) {
	write := func(t *testing.T, dir, manifest string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "suite.txt"), []byte(manifest), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name     string
		manifest string
		wantSub  string
	}{
		{"trailing garbage", "name x\ninstances 0\nleftover junk line here\n", "malformed line"},
		{"one-field line", "name x\ninstances 0\nstray\n", "malformed line"},
		{"unknown directive", "name x\ncolor blue\ninstances 0\n", "unknown directive"},
		{"duplicate name", "name x\nname y\ninstances 0\n", "duplicate name"},
		{"duplicate instances", "name x\ninstances 0\ninstances 0\n", "duplicate instances"},
		{"negative count", "name x\ninstances -3\n", "bad instance count"},
		{"non-numeric count", "name x\ninstances many\n", "bad instance count"},
		{"absurd count", fmt.Sprintf("name x\ninstances %d\n", MaxSuiteInstances+1), "exceeds limit"},
		{"missing count", "name x\n", "missing instances"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			write(t, dir, tc.manifest)
			_, err := LoadSuite(dir)
			if err == nil {
				t.Fatalf("manifest %q loaded", tc.manifest)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "suite.txt") {
				t.Fatalf("error %q does not name the offending file", err)
			}
		})
	}
	// Blank lines and surrounding whitespace stay legal.
	dir := t.TempDir()
	write(t, dir, "\nname x\n\n  instances 0  \n\n")
	s, err := LoadSuite(dir)
	if err != nil {
		t.Fatalf("whitespace-only variations rejected: %v", err)
	}
	if s.Name != "x" || s.Size() != 0 {
		t.Fatalf("loaded %q/%d, want x/0", s.Name, s.Size())
	}
}

// TestLoadSuiteRejectsBadInstanceFiles covers the per-instance validation:
// zero-cell netlists and out-of-range start cells fail with the offending
// file named.
func TestLoadSuiteRejectsBadInstanceFiles(t *testing.T) {
	setup := func(t *testing.T, nl, start string) string {
		t.Helper()
		dir := t.TempDir()
		for name, body := range map[string]string{
			"suite.txt": "name x\ninstances 1\n", "instance_000.nl": nl, "start_000.txt": start,
		} {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}

	dir := setup(t, "cells 0\n", "\n")
	if _, err := LoadSuite(dir); err == nil {
		t.Fatal("zero-cell netlist loaded")
	} else if !strings.Contains(err.Error(), "instance_000.nl") {
		t.Fatalf("error %q does not name the netlist file", err)
	}

	dir = setup(t, "cells 3\nnet 0 1\n", "0 1 7\n")
	if _, err := LoadSuite(dir); err == nil {
		t.Fatal("out-of-range start cell loaded")
	} else if !strings.Contains(err.Error(), "start_000.txt") || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("error %q does not name the start file and range", err)
	}

	dir = setup(t, "cells 3\nnet 0 1\n", "0 1 x\n")
	if _, err := LoadSuite(dir); err == nil {
		t.Fatal("non-numeric start cell loaded")
	} else if !strings.Contains(err.Error(), "start_000.txt") {
		t.Fatalf("error %q does not name the start file", err)
	}
}

func TestMatrixWriteCSV(t *testing.T) {
	suite := smallSuite(7)
	x, _ := Run(suite, smallMethods(), []int64{200}, Config{Seed: 7})
	var buf bytes.Buffer
	if err := x.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 3 methods x 1 budget x 6 instances.
	if len(lines) != 1+3*6 {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), 1+3*6, out)
	}
	if lines[0] != "suite,method,budget,instance,start_density,best_density,reduction" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "GOLA,") {
			t.Fatalf("row missing suite name: %q", l)
		}
		if strings.Count(l, ",") != 6 {
			t.Fatalf("row has wrong arity: %q", l)
		}
	}
}

func TestCSVFieldQuoting(t *testing.T) {
	if got := csvField("plain"); got != "plain" {
		t.Fatalf("plain field quoted: %q", got)
	}
	if got := csvField(`a,"b`); got != `"a,""b"` {
		t.Fatalf("quoting = %q", got)
	}
}

func TestSuiteSaveLoadGotoStartsAndNOLA(t *testing.T) {
	nola := NewSuite(SuiteParams{Name: "NOLA", Instances: 3, Cells: 10, Nets: 40, MinPins: 2, MaxPins: 5}, 9).
		WithGotoStarts()
	dir := t.TempDir()
	if err := SaveSuite(dir, nola); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSuite(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != nola.Name {
		t.Fatalf("name %q, want %q", back.Name, nola.Name)
	}
	for i := 0; i < nola.Size(); i++ {
		if back.Start(i).Density() != nola.Start(i).Density() {
			t.Fatalf("instance %d density changed through save/load", i)
		}
		if !back.Netlists[i].IsGraph() == nola.Netlists[i].IsGraph() {
			t.Fatalf("instance %d pin structure changed", i)
		}
	}
}
