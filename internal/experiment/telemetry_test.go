package experiment

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/metrics"
	"mcopt/internal/netlist"
)

// miniSuite is a small, fast suite for telemetry determinism checks.
func miniSuite() *Suite {
	return NewSuite(SuiteParams{
		Name: "mini", Instances: 4, Cells: 10, Nets: 20, MinPins: 2, MaxPins: 2,
	}, 99)
}

func miniMethods() []Method {
	one := func(*netlist.Netlist) core.G { return gfunc.One() }
	return []Method{
		{Name: "g = 1", Strategy: Fig1, NewG: one},
		{Name: "g = 1 (fig2)", Strategy: Fig2, NewG: one},
	}
}

func telemetryJSON(t *testing.T, m *metrics.RunMetrics) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// collectSuite runs the mini suite with telemetry attached and returns the
// matrix, the collector and the JSONL bytes.
func collectSuite(t *testing.T, sequential bool) (*Matrix, *Telemetry, []byte) {
	t.Helper()
	var buf bytes.Buffer
	tel := NewTelemetry(&buf)
	x, _ := Run(miniSuite(), miniMethods(), []int64{300, 900}, Config{
		Seed: 5, Sequential: sequential, Telemetry: tel,
	})
	if err := tel.Err(); err != nil {
		t.Fatal(err)
	}
	return x, tel, buf.Bytes()
}

func TestTelemetryParallelMatchesSequential(t *testing.T) {
	xSeq, telSeq, jSeq := collectSuite(t, true)
	xPar, telPar, jPar := collectSuite(t, false)

	if !reflect.DeepEqual(xSeq.BestDensities, xPar.BestDensities) {
		t.Fatal("parallel run changed the measurement matrix")
	}
	if !bytes.Equal(jSeq, jPar) {
		t.Fatal("parallel run changed the JSONL byte stream")
	}
	if telemetryJSON(t, telSeq.Aggregate()) != telemetryJSON(t, telPar.Aggregate()) {
		t.Fatal("parallel run changed the aggregate metrics")
	}
	for m := 0; m < 2; m++ {
		for b := 0; b < 2; b++ {
			for i := 0; i < 4; i++ {
				s, p := telSeq.CellMetrics(m, b, i), telPar.CellMetrics(m, b, i)
				if s == nil || p == nil {
					t.Fatalf("cell (%d,%d,%d) missing", m, b, i)
				}
				if telemetryJSON(t, s) != telemetryJSON(t, p) {
					t.Fatalf("cell (%d,%d,%d) metrics diverged", m, b, i)
				}
			}
		}
	}
}

func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	bare, _ := Run(miniSuite(), miniMethods(), []int64{300}, Config{Seed: 5})
	inst, _, _ := collectSuite(t, false)
	for m := range bare.BestDensities {
		for i, d := range bare.BestDensities[m][0] {
			if inst.BestDensities[m][0][i] != d {
				t.Fatalf("telemetry changed method %d instance %d: %d vs %d",
					m, i, inst.BestDensities[m][0][i], d)
			}
		}
	}
}

func TestTelemetryEventStreamRoundTrips(t *testing.T) {
	_, tel, raw := collectSuite(t, false)
	recs, err := metrics.ReadRecords(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	starts, ends := 0, 0
	labels := map[string]bool{}
	for _, r := range recs {
		labels[r.Run] = true
		switch r.Kind {
		case "start":
			starts++
		case "end":
			ends++
		}
	}
	// 2 methods × 2 budgets × 4 instances = 16 cells, one run each.
	if starts != 16 || ends != 16 {
		t.Fatalf("starts/ends = %d/%d, want 16/16", starts, ends)
	}
	if len(labels) != 16 {
		t.Fatalf("%d distinct run labels, want 16", len(labels))
	}
	if want := "mini/g = 1/Figure 1/300/0@5"; !labels[want] {
		t.Fatalf("missing run label %q in %v", want, labels)
	}
	if agg := tel.Aggregate(); agg.Runs != 16 {
		t.Fatalf("aggregate runs = %d, want 16", agg.Runs)
	}
}

func TestTelemetryAccumulatesAcrossRuns(t *testing.T) {
	tel := NewTelemetry(nil)
	cfg := Config{Seed: 5, Telemetry: tel}
	Run(miniSuite(), miniMethods(), []int64{300}, cfg)
	Run(miniSuite(), miniMethods(), []int64{300}, cfg)

	cell := tel.CellMetrics(0, 0, 0)
	if cell == nil || cell.Runs != 2 {
		t.Fatalf("cell runs = %+v, want 2 runs", cell)
	}
	if cell.BudgetLimit != 600 {
		t.Fatalf("cell budget limit = %d, want 600", cell.BudgetLimit)
	}
	mm := tel.MethodMetrics(0, 0)
	if mm.Runs != 8 { // 4 instances × 2 observed runs
		t.Fatalf("method runs = %d, want 8", mm.Runs)
	}
	if mm.Proposed != mm.Accepted+mm.Rejected {
		t.Fatalf("proposed %d != accepted %d + rejected %d", mm.Proposed, mm.Accepted, mm.Rejected)
	}
	if u := mm.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %g outside (0, 1]", u)
	}
}
