package experiment

import (
	"context"
	"fmt"

	"mcopt/internal/checkpoint"
	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/netlist"
	"mcopt/internal/partition"
	"mcopt/internal/rng"
	"mcopt/internal/sched"
	"mcopt/internal/tsp"
)

// This file holds the extension experiments X1 and X2 (see DESIGN.md): the
// circuit-partition and TSP studies the paper points to in §2 and §5
// ([GOLD84], [NAHA84]) but publishes only as conclusions. Both pit the
// Monte Carlo g classes against the "proven heuristics" the paper faults
// [KIRK83] for ignoring, under the same equal-move-budget control as the
// main tables.

// PartitionScale characterizes balanced-bipartition cut magnitudes for the
// X1 instances (64 cells, 192 nets of 2–4 pins: random cuts near 140).
func PartitionScale() gfunc.Scale { return gfunc.Scale{TypicalCost: 140, TypicalDelta: 2} }

// PartitionComparison runs X1: Monte Carlo classes vs one-shot local search
// vs Kernighan–Lin on random balanced bipartitions, every method limited to
// the same move budget per instance. Columns: total best cut over the
// suite, total reduction, and wins against six-temperature annealing.
//
// The (method, instance) grid executes on the shared scheduler; cells
// skipped by cancellation keep the starting cut (zero reduction), and the
// error reports the interruption.
func PartitionComparison(seed uint64, instances, cells, nets int, budget int64, ex sched.Options) (*Table, error) {
	nls := make([]*netlist.Netlist, instances)
	starts := make([][]int, instances)
	startCuts := make([]int, instances)
	for i := range nls {
		nls[i] = netlist.RandomHyper(rng.Derive("x1/netlist", seed, uint64(i)), cells, nets, 2, 4)
		b := partition.Random(nls[i], rng.Derive("x1/start", seed, uint64(i)))
		starts[i] = b.Sides()
		startCuts[i] = b.CutSize()
	}
	start := func(i int) *partition.Bipartition {
		return partition.MustNew(nls[i], starts[i])
	}

	scale := PartitionScale()
	class := func(id int) func() core.G {
		b, ok := gfunc.ByID(id)
		if !ok {
			panic(fmt.Sprintf("experiment: unknown class %d", id))
		}
		var ys []float64
		if b.NeedsY {
			ys = b.DefaultYs(scale)
		}
		return func() core.G { return b.Build(ys) }
	}
	mc := func(name string, g func() core.G) func(ctx context.Context, i int) int {
		return func(ctx context.Context, i int) int {
			sol := partition.NewSolution(start(i))
			res := core.Figure1{G: g()}.Run(sol,
				core.NewBudget(budget).WithContext(ctx), rng.Derive("x1/run/"+name, seed, uint64(i)))
			return int(res.BestCost)
		}
	}
	type row struct {
		name string
		cell func(ctx context.Context, i int) int
		cuts []int
	}
	rows := []row{
		{name: "Six Temperature Annealing", cell: mc("Six Temperature Annealing", class(2))},
		{name: "Metropolis", cell: mc("Metropolis", class(1))},
		{name: "g = 1", cell: mc("g = 1", class(3))},
		{name: "Cubic Diff", cell: mc("Cubic Diff", class(15))},
		// One-shot local search: a single descent, then idle (the floor any
		// Monte Carlo method should beat given uphill moves help at all).
		{name: "Local search (1 descent)", cell: func(ctx context.Context, i int) int {
			sol := partition.NewSolution(start(i))
			sol.Descend(core.NewBudget(budget).WithContext(ctx))
			return sol.CutSize()
		}},
		{name: "Kernighan-Lin", cell: func(ctx context.Context, i int) int {
			b := start(i)
			partition.KernighanLin(b, core.NewBudget(budget).WithContext(ctx))
			return b.CutSize()
		}},
		{name: "Fiduccia-Mattheyses", cell: func(ctx context.Context, i int) int {
			b := start(i)
			partition.FiducciaMattheyses(b, core.NewBudget(budget).WithContext(ctx), partition.FMConfig{Tolerance: 1})
			return b.CutSize()
		}},
	}
	for r := range rows {
		rows[r].cuts = make([]int, instances)
		copy(rows[r].cuts, startCuts) // skipped cells read as "no reduction"
	}

	grid := sched.Grid2{A: len(rows), B: instances}
	fields := []string{"experiment.PartitionComparison", fmt.Sprint(seed),
		fmt.Sprint(instances), fmt.Sprint(cells), fmt.Sprint(nets), fmt.Sprint(budget)}
	for _, r := range rows {
		fields = append(fields, r.name)
	}
	jr, err := ex.Checkpoint.Journal("x1", checkpoint.Fingerprint(fields...))
	if err != nil {
		return nil, err
	}
	defer jr.Close()
	if err := jr.RestoreInt64(grid.N(), func(slot int, v int64) {
		r, i := grid.Split(slot)
		rows[r].cuts[i] = int(v)
	}); err != nil {
		return nil, err
	}
	if jr != nil {
		ex.Skip = jr.Done
	}
	rep := sched.Run(grid.N(), ex, func(ctx context.Context, j int) error {
		r, i := grid.Split(j)
		rows[r].cuts[i] = rows[r].cell(ctx, i)
		return jr.AppendInt64(ctx, j, int64(rows[r].cuts[i]))
	})

	startSum := 0
	for _, c := range startCuts {
		startSum += c
	}
	t := &Table{
		Title: "X1 — Circuit partition: Monte Carlo vs proven heuristics",
		Note: fmt.Sprintf("%d instances, %d cells, %d nets (2-4 pins); budget %d moves/instance; random-start cut sum %d",
			instances, cells, nets, budget, startSum),
		Columns: []string{"cut sum", "reduction", "wins vs 6T-SA"},
	}
	ref := rows[0].cuts // six-temperature annealing
	for _, r := range rows {
		sum, wins := 0, 0
		for i, c := range r.cuts {
			sum += c
			if c < ref[i] {
				wins++
			}
		}
		t.AddRow(r.name, sum, startSum-sum, wins)
	}
	return t, rep.Err()
}

// TSPScale characterizes the X2 tours (60 uniform cities in the unit
// square: random tours near length 31, 2-opt deltas a few tenths).
func TSPScale() gfunc.Scale { return gfunc.Scale{TypicalCost: 30, TypicalDelta: 0.3} }

// TSPComparison runs X2, the [GOLD84] shape experiment: annealing vs 2-opt
// with random restarts at the same move budget, plus the constructive
// heuristics ([STEW77]-style hull insertion, nearest neighbor) that
// [GOLD84] found 20–60× cheaper than annealing. Columns: total tour length
// (scaled ×100 for integer display) and wins against six-temperature
// annealing.
//
// Like X1, the (method, instance) grid runs on the shared scheduler with
// start-tour lengths prefilled for cancellation-skipped cells.
func TSPComparison(seed uint64, instances, cities int, budget int64, ex sched.Options) (*Table, error) {
	insts := make([]*tsp.Instance, instances)
	starts := make([][]int, instances)
	startLens := make([]float64, instances)
	for i := range insts {
		insts[i] = tsp.RandomEuclidean(rng.Derive("x2/instance", seed, uint64(i)), cities)
		starts[i] = tsp.RandomTour(insts[i], rng.Derive("x2/start", seed, uint64(i))).Order()
		startLens[i] = insts[i].TourLength(starts[i])
	}

	scale := TSPScale()
	mc := func(name string, id int) func(ctx context.Context, i int) float64 {
		b, ok := gfunc.ByID(id)
		if !ok {
			panic(fmt.Sprintf("experiment: unknown class %d", id))
		}
		var ys []float64
		if b.NeedsY {
			ys = b.DefaultYs(scale)
		}
		return func(ctx context.Context, i int) float64 {
			tour := tsp.MustNewTour(insts[i], starts[i])
			res := core.Figure1{G: b.Build(ys)}.Run(tour,
				core.NewBudget(budget).WithContext(ctx), rng.Derive("x2/run/"+name, seed, uint64(i)))
			return res.BestCost
		}
	}
	type row struct {
		name string
		cell func(ctx context.Context, i int) float64
		lens []float64
	}
	rows := []row{
		{name: "Six Temperature Annealing", cell: mc("Six Temperature Annealing", 2)},
		{name: "Metropolis", cell: mc("Metropolis", 1)},
		{name: "g = 1", cell: mc("g = 1", 3)},
		{name: "2-opt restarts [LIN73]", cell: func(ctx context.Context, i int) float64 {
			best, _ := tsp.TwoOptRestarts(insts[i],
				core.NewBudget(budget).WithContext(ctx), rng.Derive("x2/lin73", seed, uint64(i)))
			return best.Length()
		}},
		{name: "Hull insertion [STEW77]", cell: func(_ context.Context, i int) float64 {
			return insts[i].TourLength(tsp.HullInsertion(insts[i]))
		}},
		{name: "Nearest neighbor", cell: func(_ context.Context, i int) float64 {
			return insts[i].TourLength(tsp.NearestNeighbor(insts[i], 0))
		}},
	}
	for r := range rows {
		rows[r].lens = make([]float64, instances)
		copy(rows[r].lens, startLens)
	}

	grid := sched.Grid2{A: len(rows), B: instances}
	fields := []string{"experiment.TSPComparison", fmt.Sprint(seed),
		fmt.Sprint(instances), fmt.Sprint(cities), fmt.Sprint(budget)}
	for _, r := range rows {
		fields = append(fields, r.name)
	}
	jr, err := ex.Checkpoint.Journal("x2", checkpoint.Fingerprint(fields...))
	if err != nil {
		return nil, err
	}
	defer jr.Close()
	if err := jr.RestoreFloat64(grid.N(), func(slot int, v float64) {
		r, i := grid.Split(slot)
		rows[r].lens[i] = v
	}); err != nil {
		return nil, err
	}
	if jr != nil {
		ex.Skip = jr.Done
	}
	rep := sched.Run(grid.N(), ex, func(ctx context.Context, j int) error {
		r, i := grid.Split(j)
		rows[r].lens[i] = rows[r].cell(ctx, i)
		return jr.AppendFloat64(ctx, j, rows[r].lens[i])
	})

	t := &Table{
		Title: "X2 — TSP: annealing vs 2-opt restarts and constructives ([GOLD84] shape)",
		Note: fmt.Sprintf("%d Euclidean instances, %d cities; budget %d moves/instance; lengths x100",
			instances, cities, budget),
		Columns: []string{"length sum x100", "wins vs 6T-SA"},
	}
	ref := rows[0].lens
	for _, r := range rows {
		sum, wins := 0.0, 0
		for i, l := range r.lens {
			sum += l
			if l < ref[i] {
				wins++
			}
		}
		t.AddRow(r.name, int(sum*100), wins)
	}
	return t, rep.Err()
}
