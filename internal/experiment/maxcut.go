package experiment

import (
	"context"
	"fmt"

	"mcopt/internal/checkpoint"
	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/maxcut"
	"mcopt/internal/rng"
	"mcopt/internal/sched"
)

// X3: weighted max-cut, the library's first registry-era plugin domain,
// exercised through the same equal-move-budget harness as X1/X2/X2b —
// Monte Carlo g classes against one-shot local search and the classic
// greedy 1/2-approximation constructive.

// MaxCutScale characterizes the X3 instances (64 vertices, 192 ±1 edges:
// positive weight near 96, random cuts near zero, flip deltas a few units).
func MaxCutScale() gfunc.Scale { return gfunc.Scale{TypicalCost: 96, TypicalDelta: 2} }

// MaxCutComparison runs X3 over G-set-style random instances. Cells record
// the best cut weight each method reaches (higher is better); columns are
// the suite-total cut weight, the gain over the random starting cuts, and
// wins against six-temperature annealing. The (method, instance) grid runs
// on the shared scheduler with start cuts prefilled for
// cancellation-skipped cells.
func MaxCutComparison(seed uint64, instances, vertices, edges int, budget int64, ex sched.Options) (*Table, error) {
	insts := make([]*maxcut.Instance, instances)
	starts := make([][]int, instances)
	startCuts := make([]int64, instances)
	for i := range insts {
		insts[i] = maxcut.Random(rng.Derive("x3/instance", seed, uint64(i)), vertices, edges)
		c := maxcut.RandomCut(insts[i], rng.Derive("x3/start", seed, uint64(i)))
		starts[i] = c.Sides()
		startCuts[i] = c.Weight()
	}
	start := func(i int) *maxcut.Cut {
		c, err := maxcut.NewCut(insts[i], starts[i])
		if err != nil {
			panic(err) // unreachable: starts were produced by RandomCut
		}
		return c
	}

	scale := MaxCutScale()
	mc := func(name string, id int) func(ctx context.Context, i int) int64 {
		b, ok := gfunc.ByID(id)
		if !ok {
			panic(fmt.Sprintf("experiment: unknown class %d", id))
		}
		var ys []float64
		if b.NeedsY {
			ys = b.DefaultYs(scale)
		}
		return func(ctx context.Context, i int) int64 {
			sol := maxcut.NewSolution(start(i))
			res := core.Figure1{G: b.Build(ys)}.Run(sol,
				core.NewBudget(budget).WithContext(ctx), rng.Derive("x3/run/"+name, seed, uint64(i)))
			// Cost is posW − cut; recover the cut weight for display.
			return insts[i].PositiveWeight() - int64(res.BestCost)
		}
	}
	type row struct {
		name string
		cell func(ctx context.Context, i int) int64
		cuts []int64
	}
	rows := []row{
		{name: "Six Temperature Annealing", cell: mc("Six Temperature Annealing", 2)},
		{name: "Metropolis", cell: mc("Metropolis", 1)},
		{name: "g = 1", cell: mc("g = 1", 3)},
		{name: "Cubic Diff", cell: mc("Cubic Diff", 15)},
		{name: "Local search (1 descent)", cell: func(ctx context.Context, i int) int64 {
			sol := maxcut.NewSolution(start(i))
			sol.Descend(core.NewBudget(budget).WithContext(ctx))
			return sol.CutWeight()
		}},
		{name: "Greedy construction", cell: func(_ context.Context, i int) int64 {
			c, err := maxcut.NewCut(insts[i], maxcut.Greedy(insts[i]))
			if err != nil {
				panic(err)
			}
			return c.Weight()
		}},
		{name: "Greedy + descent", cell: func(ctx context.Context, i int) int64 {
			c, err := maxcut.NewCut(insts[i], maxcut.Greedy(insts[i]))
			if err != nil {
				panic(err)
			}
			sol := maxcut.NewSolution(c)
			sol.Descend(core.NewBudget(budget).WithContext(ctx))
			return sol.CutWeight()
		}},
	}
	for r := range rows {
		rows[r].cuts = make([]int64, instances)
		copy(rows[r].cuts, startCuts) // skipped cells read as "no gain"
	}

	grid := sched.Grid2{A: len(rows), B: instances}
	fields := []string{"experiment.MaxCutComparison", fmt.Sprint(seed),
		fmt.Sprint(instances), fmt.Sprint(vertices), fmt.Sprint(edges), fmt.Sprint(budget)}
	for _, r := range rows {
		fields = append(fields, r.name)
	}
	jr, err := ex.Checkpoint.Journal("x3", checkpoint.Fingerprint(fields...))
	if err != nil {
		return nil, err
	}
	defer jr.Close()
	if err := jr.RestoreInt64(grid.N(), func(slot int, v int64) {
		r, i := grid.Split(slot)
		rows[r].cuts[i] = v
	}); err != nil {
		return nil, err
	}
	if jr != nil {
		ex.Skip = jr.Done
	}
	rep := sched.Run(grid.N(), ex, func(ctx context.Context, j int) error {
		r, i := grid.Split(j)
		rows[r].cuts[i] = rows[r].cell(ctx, i)
		return jr.AppendInt64(ctx, j, rows[r].cuts[i])
	})

	var startSum int64
	for _, c := range startCuts {
		startSum += c
	}
	t := &Table{
		Title: "X3 — Max-cut: annealing vs greedy and local search (registry plugin domain)",
		Note: fmt.Sprintf("%d instances, %d vertices, %d ±1 edges; budget %d moves/instance; random-start cut sum %d",
			instances, vertices, edges, budget, startSum),
		Columns: []string{"cut sum", "gain", "wins vs 6T-SA"},
	}
	ref := rows[0].cuts // six-temperature annealing
	for _, r := range rows {
		var sum int64
		wins := 0
		for i, c := range r.cuts {
			sum += c
			if c > ref[i] {
				wins++
			}
		}
		t.AddRow(r.name, int(sum), int(sum-startSum), wins)
	}
	return t, rep.Err()
}
