package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a formatted experiment result: a title, one label column, and
// one value column per budget or strategy.
type Table struct {
	Title   string
	Note    string
	Columns []string // value-column headers, e.g. "6 sec", "9 sec", "12 sec"
	Rows    []TableRow
}

// TableRow is one method's line.
type TableRow struct {
	Label string
	Cells []string
}

// AddRow appends a row of integer cells.
func (t *Table) AddRow(label string, values ...int) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf("%d", v)
	}
	t.Rows = append(t.Rows, TableRow{Label: label, Cells: cells})
}

// AddTextRow appends a row of preformatted cells (e.g. "-" placeholders).
func (t *Table) AddTextRow(label string, cells ...string) {
	t.Rows = append(t.Rows, TableRow{Label: label, Cells: cells})
}

// Render writes the table as aligned monospaced text.
func (t *Table) Render(w io.Writer) error {
	labelW := len("g function")
	for _, r := range t.Rows {
		labelW = max(labelW, len(r.Label))
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r.Cells {
			if i < len(colW) {
				colW[i] = max(colW[i], len(c))
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	fmt.Fprintf(&sb, "%-*s", labelW, "g function")
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "  %*s", colW[i], c)
	}
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("-", labelW))
	for i := range t.Columns {
		sb.WriteString("  ")
		sb.WriteString(strings.Repeat("-", colW[i]))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", labelW, r.Label)
		for i, c := range r.Cells {
			if i < len(colW) {
				fmt.Fprintf(&sb, "  %*s", colW[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "%s\n", t.Note)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table for diagnostics.
func (t *Table) String() string {
	var sb strings.Builder
	// strings.Builder never errors.
	_ = t.Render(&sb)
	return sb.String()
}
