package experiment

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTable41Golden freezes the complete small-budget Table 4.1 text for
// seed 1. Any engine, g-class, generator, or formatting change that shifts
// results shows up as a diff here — the guard a reproduction repo needs
// most. Regenerate intentionally with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiment -run Golden
func TestTable41Golden(t *testing.T) {
	tab, _, _ := Table41(1, []int64{120, 240}, Config{})
	got := tab.String()
	path := filepath.Join("testdata", "table41_small.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Table 4.1 output changed.\n--- got ---\n%s\n--- want ---\n%s\n"+
			"If the change is intentional, regenerate with UPDATE_GOLDEN=1.", got, string(want))
	}
}

// TestSweepGolden freezes the small size-sweep table the same way.
func TestSweepGolden(t *testing.T) {
	tab, _ := SizeSweep(SweepParams{
		Sizes: []int{8, 12}, NetsPerCell: 8, Instances: 4, Budget: 400, Seed: 1,
	})
	got := tab.String()
	path := filepath.Join("testdata", "sweep_small.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("size sweep output changed.\n--- got ---\n%s\n--- want ---\n%s", got, string(want))
	}
}
