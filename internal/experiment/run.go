package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"mcopt/internal/core"
	"mcopt/internal/linarr"
	"mcopt/internal/metrics"
	"mcopt/internal/rng"
)

// Config carries the run-wide knobs shared by every cell of a table.
type Config struct {
	// Seed drives both suite-independent randomness and per-cell streams.
	Seed uint64
	// MoveKind selects the perturbation class (default pairwise
	// interchange, as in every experiment of the paper).
	MoveKind linarr.MoveKind
	// Plateau selects the Figure-1 zero-delta policy.
	Plateau core.PlateauPolicy
	// N is the engines' counter threshold (0 = budget-split clock only).
	N int
	// Sequential disables the worker pool, for deterministic profiling.
	Sequential bool
	// Telemetry, when non-nil, collects per-cell run metrics and (if its
	// Events writer is set) a JSONL event stream. Cells buffer privately and
	// flush in sorted order after the run, so output is byte-identical
	// whether cells ran sequentially or in parallel.
	Telemetry *Telemetry
}

// Matrix holds the raw measurements behind a table: one cell per
// (method, budget, instance).
type Matrix struct {
	SuiteName   string
	MethodNames []string
	Budgets     []int64
	// BestDensities[m][b][i] is the best density method m found on
	// instance i within budget b.
	BestDensities [][][]int
	// StartDensities[i] is instance i's starting density.
	StartDensities []int
}

// StartSum returns the suite's total starting density.
func (x *Matrix) StartSum() int {
	total := 0
	for _, d := range x.StartDensities {
		total += d
	}
	return total
}

// Reduction returns the total density reduction of method m at budget b —
// the quantity the paper's tables report.
func (x *Matrix) Reduction(m, b int) int {
	total := 0
	for i, d := range x.BestDensities[m][b] {
		total += x.StartDensities[i] - d
	}
	return total
}

// Reductions returns the per-budget reduction row for method m.
func (x *Matrix) Reductions(m int) []int {
	out := make([]int, len(x.Budgets))
	for b := range out {
		out[b] = x.Reduction(m, b)
	}
	return out
}

// Run evaluates every method at every budget on every suite instance,
// returning the full measurement matrix. Cells are independent: each runs
// from the suite's fixed starting arrangement with its own derived random
// stream, so the matrix is reproducible regardless of scheduling.
func Run(suite *Suite, methods []Method, budgets []int64, cfg Config) *Matrix {
	x := &Matrix{
		SuiteName:      suite.Name,
		MethodNames:    make([]string, len(methods)),
		Budgets:        budgets,
		BestDensities:  make([][][]int, len(methods)),
		StartDensities: suite.StartDensities(),
	}
	for m, meth := range methods {
		x.MethodNames[m] = meth.Name
		x.BestDensities[m] = make([][]int, len(budgets))
		for b := range budgets {
			x.BestDensities[m][b] = make([]int, suite.Size())
		}
	}

	type job struct{ m, b, i int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if cfg.Sequential {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				x.BestDensities[j.m][j.b][j.i] =
					runCell(suite, cellKey(j), methods[j.m], budgets[j.b], cfg)
			}
		}()
	}
	for m := range methods {
		for b := range budgets {
			for i := 0; i < suite.Size(); i++ {
				jobs <- job{m, b, i}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if cfg.Telemetry != nil {
		cfg.Telemetry.flush()
	}
	return x
}

// runCell runs one (method, budget, instance) cell and returns the best
// density found.
func runCell(suite *Suite, k cellKey, m Method, budget int64, cfg Config) int {
	inst := k.i
	sol := linarr.NewSolution(suite.Start(inst), cfg.MoveKind)
	g := m.NewG(suite.Netlists[inst])
	r := rng.Derive(
		fmt.Sprintf("run/%s/%s/%s/%d", suite.Name, m.Name, m.Strategy, budget),
		cfg.Seed, uint64(inst))
	b := core.NewBudget(budget)

	var hook core.Hook
	if tel := cfg.Telemetry; tel != nil {
		cell := tel.cell(k)
		cell.rm.BudgetLimit += budget
		hooks := []core.Hook{cell.rm.Hook()}
		if tel.Events != nil {
			ew := metrics.NewEventWriter(&cell.buf, runLabel(suite, m, budget, inst, cfg.Seed))
			hooks = append(hooks, ew.Hook())
		}
		hook = metrics.Tee(hooks...)
	}

	var res core.Result
	switch m.Strategy {
	case Fig1:
		res = core.Figure1{G: g, N: cfg.N, Plateau: cfg.Plateau, Hook: hook}.Run(sol, b, r)
	case Fig2:
		res = core.Figure2{G: g, N: cfg.N, Hook: hook}.Run(sol, b, r)
	default:
		panic(fmt.Sprintf("experiment: unknown strategy %d", int(m.Strategy)))
	}
	return int(res.BestCost)
}
