package experiment

import (
	"context"
	"fmt"

	"mcopt/internal/checkpoint"
	"mcopt/internal/core"
	"mcopt/internal/linarr"
	"mcopt/internal/metrics"
	"mcopt/internal/rng"
	"mcopt/internal/sched"
)

// Config carries the run-wide knobs shared by every cell of a table.
type Config struct {
	// Seed drives both suite-independent randomness and per-cell streams.
	Seed uint64
	// MoveKind selects the perturbation class (default pairwise
	// interchange, as in every experiment of the paper).
	MoveKind linarr.MoveKind
	// Plateau selects the Figure-1 zero-delta policy.
	Plateau core.PlateauPolicy
	// N is the engines' counter threshold (0 = budget-split clock only).
	N int
	// Engine selects the engine behind Figure-1 methods: "" or "fig1" is
	// the serial walk, "tempering" the replica-exchange engine (Chains
	// coupled chains exchanging every ExchangeEvery moves). Figure-2
	// methods are unaffected.
	Engine string
	// Chains and ExchangeEvery configure the tempering engine (0 = the
	// engine defaults: 4 chains, 256 moves).
	Chains        int
	ExchangeEvery int64
	// Batch, when > 1, evaluates proposals in blocks of Batch on solutions
	// that support it (a distinct deterministic trajectory; see
	// core.Figure1.Batch).
	Batch int
	// Sequential forces a single worker, for deterministic profiling.
	// Equivalent to Exec.Workers = 1; kept for the CLIs' -seq flag.
	Sequential bool
	// Exec carries the execution-layer knobs — worker count, cancellation
	// context, progress callback. The zero value runs on all cores with no
	// cancellation. Output is byte-identical for every worker count.
	Exec sched.Options
	// Telemetry, when non-nil, collects per-cell run metrics and (if its
	// Events writer is set) a JSONL event stream. Cells buffer privately and
	// flush in sorted order after the run, so output is byte-identical
	// whether cells ran sequentially or in parallel.
	Telemetry *Telemetry
}

// exec resolves the effective scheduler options.
func (c Config) exec() sched.Options {
	o := c.Exec
	if c.Sequential {
		o.Workers = 1
	}
	return o
}

// Matrix holds the raw measurements behind a table: one cell per
// (method, budget, instance).
type Matrix struct {
	SuiteName   string
	MethodNames []string
	Budgets     []int64
	// BestDensities[m][b][i] is the best density method m found on
	// instance i within budget b.
	BestDensities [][][]int
	// StartDensities[i] is instance i's starting density.
	StartDensities []int
}

// StartSum returns the suite's total starting density.
func (x *Matrix) StartSum() int {
	total := 0
	for _, d := range x.StartDensities {
		total += d
	}
	return total
}

// Reduction returns the total density reduction of method m at budget b —
// the quantity the paper's tables report.
func (x *Matrix) Reduction(m, b int) int {
	total := 0
	for i, d := range x.BestDensities[m][b] {
		total += x.StartDensities[i] - d
	}
	return total
}

// Reductions returns the per-budget reduction row for method m.
func (x *Matrix) Reductions(m int) []int {
	out := make([]int, len(x.Budgets))
	for b := range out {
		out[b] = x.Reduction(m, b)
	}
	return out
}

// Run evaluates every method at every budget on every suite instance,
// returning the full measurement matrix. Cells are independent: each runs
// from the suite's fixed starting arrangement with its own derived random
// stream, so the matrix is byte-identical regardless of scheduling.
//
// The grid executes on the shared scheduler (internal/sched). On
// cancellation the matrix is still returned: cells that never ran keep
// their starting density (zero reduction), so partial tables stay
// meaningful. The error, when non-nil, reports the interruption or any
// cell panic; sibling cells are unaffected by a crashing one.
func Run(suite *Suite, methods []Method, budgets []int64, cfg Config) (*Matrix, error) {
	x := &Matrix{
		SuiteName:      suite.Name,
		MethodNames:    make([]string, len(methods)),
		Budgets:        budgets,
		BestDensities:  make([][][]int, len(methods)),
		StartDensities: suite.StartDensities(),
	}
	// The per-cell RNG stream label depends only on (method, budget), so it
	// is built once per row here rather than once per cell in runCell.
	labels := make([][]string, len(methods))
	for m, meth := range methods {
		x.MethodNames[m] = meth.Name
		x.BestDensities[m] = make([][]int, len(budgets))
		labels[m] = make([]string, len(budgets))
		for b, budget := range budgets {
			labels[m][b] = fmt.Sprintf("run/%s/%s/%s/%d", suite.Name, meth.Name, meth.Strategy, budget)
			row := make([]int, suite.Size())
			// Prefill with the starting densities: a cell skipped by
			// cancellation reads as "no reduction", not as a bogus zero.
			copy(row, x.StartDensities)
			x.BestDensities[m][b] = row
		}
	}

	grid := sched.Grid3{A: len(methods), B: len(budgets), C: suite.Size()}
	exec := cfg.exec()
	jr, err := exec.Checkpoint.Journal("run-"+suite.Name, runFingerprint(suite, methods, budgets, cfg))
	if err != nil {
		return x, err
	}
	defer jr.Close()
	if err := jr.RestoreInt64(grid.N(), func(slot int, v int64) {
		m, b, i := grid.Split(slot)
		x.BestDensities[m][b][i] = int(v)
	}); err != nil {
		return x, err
	}
	if jr != nil {
		exec.Skip = jr.Done
	}
	rep := sched.Run(grid.N(), exec, func(ctx context.Context, j int) error {
		m, b, i := grid.Split(j)
		d := runCell(ctx, suite, cellKey{m, b, i}, methods[m], budgets[b], labels[m][b], cfg)
		x.BestDensities[m][b][i] = d
		return jr.AppendInt64(ctx, j, int64(d))
	})
	if cfg.Telemetry != nil {
		cfg.Telemetry.flush()
	}
	return x, rep.Err()
}

// runFingerprint keys the checkpoint journal to everything that shapes the
// matrix: the suite (name, size, and starting state), the method set with
// strategies, the budgets, and the run knobs. A journal written under any
// other parameters is rejected on resume instead of silently replayed.
func runFingerprint(suite *Suite, methods []Method, budgets []int64, cfg Config) uint64 {
	fields := []string{
		"experiment.Run", suite.Name,
		fmt.Sprint(suite.Size()), fmt.Sprint(suite.StartDensities()),
		fmt.Sprint(budgets),
		fmt.Sprint(cfg.Seed), fmt.Sprint(int(cfg.MoveKind)), fmt.Sprint(int(cfg.Plateau)), fmt.Sprint(cfg.N),
		cfg.Engine, fmt.Sprint(cfg.Chains), fmt.Sprint(cfg.ExchangeEvery), fmt.Sprint(cfg.Batch),
	}
	for _, m := range methods {
		fields = append(fields, m.Name, fmt.Sprint(int(m.Strategy)))
	}
	return checkpoint.Fingerprint(fields...)
}

// runCell runs one (method, budget, instance) cell and returns the best
// density found. label is the cell's RNG stream name, shared by its whole
// (method, budget) row.
func runCell(ctx context.Context, suite *Suite, k cellKey, m Method, budget int64, label string, cfg Config) int {
	inst := k.i
	sol := linarr.NewSolution(suite.Start(inst), cfg.MoveKind)
	g := m.NewG(suite.Netlists[inst])
	r := rng.Derive(label, cfg.Seed, uint64(inst))
	b := core.NewBudget(budget).WithContext(ctx)

	var hook core.Hook
	if tel := cfg.Telemetry; tel != nil {
		cell := tel.cell(k)
		cell.rm.BudgetLimit += budget
		hooks := []core.Hook{cell.rm.Hook()}
		if tel.Events != nil {
			ew := metrics.NewEventWriter(&cell.buf, runLabel(suite, m, budget, inst, cfg.Seed))
			hooks = append(hooks, ew.Hook())
		}
		hook = metrics.Tee(hooks...)
	}

	var res core.Result
	switch m.Strategy {
	case Fig1:
		if cfg.Engine == "tempering" {
			// Workers: 1 — the suite grid is already the parallel unit here;
			// the engine's own worker pool is for single-job deployments.
			// Results are byte-identical either way.
			res = core.Tempering{
				G: g, Chains: cfg.Chains, ExchangeEvery: cfg.ExchangeEvery,
				Batch: cfg.Batch, Workers: 1, Plateau: cfg.Plateau, Hook: hook,
			}.Run(sol, b, r)
		} else {
			res = core.Figure1{G: g, N: cfg.N, Plateau: cfg.Plateau, Batch: cfg.Batch, Hook: hook}.Run(sol, b, r)
		}
	case Fig2:
		res = core.Figure2{G: g, N: cfg.N, Hook: hook}.Run(sol, b, r)
	default:
		panic(fmt.Sprintf("experiment: unknown strategy %d", int(m.Strategy)))
	}
	return int(res.BestCost)
}
