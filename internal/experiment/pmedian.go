package experiment

import (
	"fmt"

	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/pmedian"
	"mcopt/internal/rng"
)

// X2b: the location half of [GOLD84] ("routing and location problems"),
// completing the §2 story — simulated annealing against the classic
// p-median heuristics (greedy construction; Teitz–Bart vertex
// interchange) at equal move budgets.

// PMedianScale characterizes X2b cost magnitudes (60 uniform sites, p = 6:
// random assignments cost a few units, substitutions move tenths).
func PMedianScale() gfunc.Scale { return gfunc.Scale{TypicalCost: 8, TypicalDelta: 0.3} }

// PMedianComparison runs X2b. Columns: total assignment cost ×100 (lower
// is better) and wins against six-temperature annealing.
func PMedianComparison(seed uint64, instances, sites, p int, budget int64) *Table {
	insts := make([]*pmedian.Instance, instances)
	starts := make([][]int, instances)
	for i := range insts {
		insts[i] = pmedian.RandomEuclidean(rng.Derive("x2b/instance", seed, uint64(i)), sites, p)
		starts[i] = pmedian.Random(insts[i], rng.Derive("x2b/start", seed, uint64(i))).Chosen()
	}
	start := func(i int) *pmedian.Medians {
		return pmedian.MustNewMedians(insts[i], starts[i])
	}

	type row struct {
		name  string
		costs []float64
	}
	rows := []row{}
	scale := PMedianScale()
	runMC := func(name string, id int) {
		b, ok := gfunc.ByID(id)
		if !ok {
			panic(fmt.Sprintf("experiment: unknown class %d", id))
		}
		var ys []float64
		if b.NeedsY {
			ys = b.DefaultYs(scale)
		}
		r := row{name: name, costs: make([]float64, instances)}
		for i := 0; i < instances; i++ {
			sol := pmedian.NewSolution(start(i))
			res := core.Figure1{G: b.Build(ys)}.Run(sol,
				core.NewBudget(budget), rng.Derive("x2b/run/"+name, seed, uint64(i)))
			r.costs[i] = res.BestCost
		}
		rows = append(rows, r)
	}
	runMC("Six Temperature Annealing", 2)
	runMC("Metropolis", 1)
	runMC("g = 1", 3)

	inter := row{name: "Interchange restarts [Teitz-Bart]", costs: make([]float64, instances)}
	for i := 0; i < instances; i++ {
		best, _ := pmedian.InterchangeRestarts(insts[i],
			core.NewBudget(budget), rng.Derive("x2b/teitz", seed, uint64(i)))
		inter.costs[i] = best.Cost()
	}
	rows = append(rows, inter)

	greedy := row{name: "Greedy construction", costs: make([]float64, instances)}
	greedyDesc := row{name: "Greedy + interchange", costs: make([]float64, instances)}
	for i := 0; i < instances; i++ {
		chosen := pmedian.Greedy(insts[i], core.NewBudget(budget))
		greedy.costs[i] = insts[i].Cost(chosen)
		s := pmedian.NewSolution(pmedian.MustNewMedians(insts[i], chosen))
		s.Descend(core.NewBudget(budget))
		greedyDesc.costs[i] = s.Cost()
	}
	rows = append(rows, greedy, greedyDesc)

	t := &Table{
		Title: "X2b — p-median location: annealing vs vertex-substitution heuristics ([GOLD84] shape)",
		Note: fmt.Sprintf("%d Euclidean instances, %d sites, p = %d; budget %d moves/instance; costs x100",
			instances, sites, p, budget),
		Columns: []string{"cost sum x100", "wins vs 6T-SA"},
	}
	ref := rows[0].costs
	for _, r := range rows {
		sum, wins := 0.0, 0
		for i, c := range r.costs {
			sum += c
			if c < ref[i] {
				wins++
			}
		}
		t.AddRow(r.name, int(sum*100), wins)
	}
	return t
}
