package experiment

import (
	"context"
	"fmt"

	"mcopt/internal/checkpoint"
	"mcopt/internal/core"
	"mcopt/internal/gfunc"
	"mcopt/internal/pmedian"
	"mcopt/internal/rng"
	"mcopt/internal/sched"
)

// X2b: the location half of [GOLD84] ("routing and location problems"),
// completing the §2 story — simulated annealing against the classic
// p-median heuristics (greedy construction; Teitz–Bart vertex
// interchange) at equal move budgets.

// PMedianScale characterizes X2b cost magnitudes (60 uniform sites, p = 6:
// random assignments cost a few units, substitutions move tenths).
func PMedianScale() gfunc.Scale { return gfunc.Scale{TypicalCost: 8, TypicalDelta: 0.3} }

// PMedianComparison runs X2b. Columns: total assignment cost ×100 (lower
// is better) and wins against six-temperature annealing. The (method,
// instance) grid runs on the shared scheduler with start costs prefilled
// for cancellation-skipped cells.
func PMedianComparison(seed uint64, instances, sites, p int, budget int64, ex sched.Options) (*Table, error) {
	insts := make([]*pmedian.Instance, instances)
	starts := make([][]int, instances)
	startCosts := make([]float64, instances)
	for i := range insts {
		insts[i] = pmedian.RandomEuclidean(rng.Derive("x2b/instance", seed, uint64(i)), sites, p)
		m := pmedian.Random(insts[i], rng.Derive("x2b/start", seed, uint64(i)))
		starts[i] = m.Chosen()
		startCosts[i] = m.Cost()
	}
	start := func(i int) *pmedian.Medians {
		return pmedian.MustNewMedians(insts[i], starts[i])
	}

	scale := PMedianScale()
	mc := func(name string, id int) func(ctx context.Context, i int) float64 {
		b, ok := gfunc.ByID(id)
		if !ok {
			panic(fmt.Sprintf("experiment: unknown class %d", id))
		}
		var ys []float64
		if b.NeedsY {
			ys = b.DefaultYs(scale)
		}
		return func(ctx context.Context, i int) float64 {
			sol := pmedian.NewSolution(start(i))
			res := core.Figure1{G: b.Build(ys)}.Run(sol,
				core.NewBudget(budget).WithContext(ctx), rng.Derive("x2b/run/"+name, seed, uint64(i)))
			return res.BestCost
		}
	}
	type row struct {
		name  string
		cell  func(ctx context.Context, i int) float64
		costs []float64
	}
	rows := []row{
		{name: "Six Temperature Annealing", cell: mc("Six Temperature Annealing", 2)},
		{name: "Metropolis", cell: mc("Metropolis", 1)},
		{name: "g = 1", cell: mc("g = 1", 3)},
		{name: "Interchange restarts [Teitz-Bart]", cell: func(ctx context.Context, i int) float64 {
			best, _ := pmedian.InterchangeRestarts(insts[i],
				core.NewBudget(budget).WithContext(ctx), rng.Derive("x2b/teitz", seed, uint64(i)))
			return best.Cost()
		}},
		{name: "Greedy construction", cell: func(ctx context.Context, i int) float64 {
			chosen := pmedian.Greedy(insts[i], core.NewBudget(budget).WithContext(ctx))
			return insts[i].Cost(chosen)
		}},
		{name: "Greedy + interchange", cell: func(ctx context.Context, i int) float64 {
			chosen := pmedian.Greedy(insts[i], core.NewBudget(budget).WithContext(ctx))
			s := pmedian.NewSolution(pmedian.MustNewMedians(insts[i], chosen))
			s.Descend(core.NewBudget(budget).WithContext(ctx))
			return s.Cost()
		}},
	}
	for r := range rows {
		rows[r].costs = make([]float64, instances)
		copy(rows[r].costs, startCosts)
	}

	grid := sched.Grid2{A: len(rows), B: instances}
	fields := []string{"experiment.PMedianComparison", fmt.Sprint(seed),
		fmt.Sprint(instances), fmt.Sprint(sites), fmt.Sprint(p), fmt.Sprint(budget)}
	for _, r := range rows {
		fields = append(fields, r.name)
	}
	jr, err := ex.Checkpoint.Journal("x2b", checkpoint.Fingerprint(fields...))
	if err != nil {
		return nil, err
	}
	defer jr.Close()
	if err := jr.RestoreFloat64(grid.N(), func(slot int, v float64) {
		r, i := grid.Split(slot)
		rows[r].costs[i] = v
	}); err != nil {
		return nil, err
	}
	if jr != nil {
		ex.Skip = jr.Done
	}
	rep := sched.Run(grid.N(), ex, func(ctx context.Context, j int) error {
		r, i := grid.Split(j)
		rows[r].costs[i] = rows[r].cell(ctx, i)
		return jr.AppendFloat64(ctx, j, rows[r].costs[i])
	})

	t := &Table{
		Title: "X2b — p-median location: annealing vs vertex-substitution heuristics ([GOLD84] shape)",
		Note: fmt.Sprintf("%d Euclidean instances, %d sites, p = %d; budget %d moves/instance; costs x100",
			instances, sites, p, budget),
		Columns: []string{"cost sum x100", "wins vs 6T-SA"},
	}
	ref := rows[0].costs
	for _, r := range rows {
		sum, wins := 0.0, 0
		for i, c := range r.costs {
			sum += c
			if c < ref[i] {
				wins++
			}
		}
		t.AddRow(r.name, int(sum*100), wins)
	}
	return t, rep.Err()
}
