package experiment

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"mcopt/internal/metrics"
)

// cellKey identifies one (method, budget, instance) cell of a Run.
type cellKey struct{ m, b, i int }

// cellTelemetry is the per-cell collection buffer: an aggregate plus the
// cell's private JSONL byte stream, assembled off to the side while workers
// race and flushed in deterministic order afterwards.
type cellTelemetry struct {
	rm  metrics.RunMetrics
	buf bytes.Buffer
}

// Telemetry collects per-cell run metrics — and optionally a JSONL event
// stream — from an experiment Run. Attach one via Config.Telemetry.
//
// Workers write into private per-cell buffers, and Run flushes them in
// sorted (method, budget, instance) order once all cells finish, so the
// emitted JSONL bytes and the merged aggregates are identical whether the
// suite ran sequentially or on the worker pool. A single Telemetry may
// observe several Runs (e.g. Table 4.2b's two passes, or replicate loops);
// aggregates accumulate across them.
type Telemetry struct {
	// Events, when non-nil, receives the suite's JSONL event stream.
	Events io.Writer

	mu      sync.Mutex
	pending map[cellKey]*cellTelemetry
	merged  map[cellKey]*metrics.RunMetrics
	err     error
}

// NewTelemetry returns a collector; w may be nil to gather metrics only.
func NewTelemetry(w io.Writer) *Telemetry { return &Telemetry{Events: w} }

// cell returns the collection buffer for a key, creating it if needed.
func (t *Telemetry) cell(k cellKey) *cellTelemetry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending == nil {
		t.pending = make(map[cellKey]*cellTelemetry)
	}
	c := t.pending[k]
	if c == nil {
		c = &cellTelemetry{}
		t.pending[k] = c
	}
	return c
}

// flush drains the pending cells in sorted key order: JSONL buffers are
// written to Events back-to-back, and each cell's aggregate is folded into
// the cumulative per-cell metrics. Run calls this after its workers join.
func (t *Telemetry) flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]cellKey, 0, len(t.pending))
	for k := range t.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.m != kb.m {
			return ka.m < kb.m
		}
		if ka.b != kb.b {
			return ka.b < kb.b
		}
		return ka.i < kb.i
	})
	if t.merged == nil {
		t.merged = make(map[cellKey]*metrics.RunMetrics)
	}
	for _, k := range keys {
		c := t.pending[k]
		if t.Events != nil && t.err == nil && c.buf.Len() > 0 {
			if _, err := t.Events.Write(c.buf.Bytes()); err != nil {
				t.err = err
			}
		}
		agg := t.merged[k]
		if agg == nil {
			agg = &metrics.RunMetrics{}
			t.merged[k] = agg
		}
		agg.Merge(&c.rm)
	}
	t.pending = nil
}

// CellMetrics returns the accumulated metrics for one (method, budget,
// instance) cell, or nil if that cell never ran.
func (t *Telemetry) CellMetrics(m, b, i int) *metrics.RunMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.merged[cellKey{m, b, i}]
}

// MethodMetrics merges every instance cell of (method, budget) into one
// aggregate — the per-method view the CLIs print.
func (t *Telemetry) MethodMetrics(m, b int) *metrics.RunMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &metrics.RunMetrics{}
	for k, rm := range t.merged {
		if k.m == m && k.b == b {
			out.Merge(rm)
		}
	}
	return out
}

// Aggregate merges every observed cell into a single suite-wide aggregate.
func (t *Telemetry) Aggregate() *metrics.RunMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &metrics.RunMetrics{}
	for _, rm := range t.merged {
		out.Merge(rm)
	}
	return out
}

// Err reports the first event-stream write error, if any.
func (t *Telemetry) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// runLabel names one cell's event stream within a shared JSONL file.
func runLabel(suite *Suite, m Method, budget int64, inst int, seed uint64) string {
	return fmt.Sprintf("%s/%s/%s/%d/%d@%d", suite.Name, m.Name, m.Strategy, budget, inst, seed)
}
