package experiment

import (
	"strings"
	"testing"

	"mcopt/internal/sched"
)

func TestReplicateAggregates(t *testing.T) {
	suiteOf := func(seed uint64) *Suite {
		p := GOLAParams()
		p.Instances = 4
		return NewSuite(p, seed)
	}
	rep, err := Replicate([]uint64{1, 2, 3}, sched.Options{}, func(seed uint64) (*Matrix, error) {
		return Run(suiteOf(seed), smallMethods(), []int64{400}, Config{Seed: seed})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reductions) != 3 {
		t.Fatalf("replications = %d, want 3", len(rep.Reductions))
	}
	for m := range rep.MethodNames {
		mean, std := rep.Stats(m, 0)
		if mean <= 0 {
			t.Fatalf("method %d: mean reduction %g not positive", m, mean)
		}
		if std < 0 {
			t.Fatalf("negative std %g", std)
		}
	}
	// Distinct seeds should produce at least some spread across methods.
	spread := false
	for m := range rep.MethodNames {
		_, std := rep.Stats(m, 0)
		if std > 0 {
			spread = true
		}
	}
	if !spread {
		t.Fatal("three independent replications produced identical totals for every method (suspicious)")
	}
}

func TestReplicateTableRendering(t *testing.T) {
	rep := &Replicated{
		MethodNames: []string{"g = 1"},
		Budgets:     []int64{Seconds(6)},
		Reductions:  [][][]int{{{600}}, {{620}}},
	}
	tab := rep.Table("T")
	out := tab.String()
	if !strings.Contains(out, "610±10") {
		t.Fatalf("mean±std cell missing:\n%s", out)
	}
	if !strings.Contains(out, "2 replications") {
		t.Fatalf("note missing:\n%s", out)
	}
}

func TestReplicateErrors(t *testing.T) {
	if _, err := Replicate(nil, sched.Options{}, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	flip := 0
	_, err := Replicate([]uint64{1, 2}, sched.Options{Workers: 1}, func(uint64) (*Matrix, error) {
		flip++
		x := &Matrix{MethodNames: make([]string, flip), Budgets: []int64{1}}
		x.BestDensities = make([][][]int, flip)
		for m := range x.BestDensities {
			x.BestDensities[m] = [][]int{{}}
		}
		return x, nil
	})
	if err == nil {
		t.Fatal("axis change between seeds accepted")
	}
}
