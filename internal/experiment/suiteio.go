package experiment

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mcopt/internal/linarr"
	"mcopt/internal/netlist"
)

// SaveSuite writes a suite to a directory: a manifest, one netlist file per
// instance, and the fixed starting orders. Together with the deterministic
// generators this allows archiving the exact instance set behind a table —
// the artifact the 1985 authors could not publish.
//
// Layout:
//
//	dir/suite.txt          "name <name>" and "instances <n>"
//	dir/instance_000.nl    text netlist format
//	dir/start_000.txt      space-separated cell order
func SaveSuite(dir string, s *Suite) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: save suite: %w", err)
	}
	var manifest strings.Builder
	fmt.Fprintf(&manifest, "name %s\n", s.Name)
	fmt.Fprintf(&manifest, "instances %d\n", s.Size())
	if err := os.WriteFile(filepath.Join(dir, "suite.txt"), []byte(manifest.String()), 0o644); err != nil {
		return fmt.Errorf("experiment: save suite: %w", err)
	}
	for i, nl := range s.Netlists {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("instance_%03d.nl", i)))
		if err != nil {
			return fmt.Errorf("experiment: save suite: %w", err)
		}
		if err := netlist.Write(f, nl); err != nil {
			f.Close()
			return fmt.Errorf("experiment: save suite instance %d: %w", i, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("experiment: save suite instance %d: %w", i, err)
		}
		var order strings.Builder
		for p, c := range s.Starts[i] {
			if p > 0 {
				order.WriteByte(' ')
			}
			order.WriteString(strconv.Itoa(c))
		}
		order.WriteByte('\n')
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("start_%03d.txt", i)),
			[]byte(order.String()), 0o644); err != nil {
			return fmt.Errorf("experiment: save suite start %d: %w", i, err)
		}
	}
	return nil
}

// LoadSuite reads a suite saved by SaveSuite, validating every starting
// order against its netlist.
func LoadSuite(dir string) (*Suite, error) {
	mf, err := os.Open(filepath.Join(dir, "suite.txt"))
	if err != nil {
		return nil, fmt.Errorf("experiment: load suite: %w", err)
	}
	defer mf.Close()
	s := &Suite{}
	count := -1
	sc := bufio.NewScanner(mf)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		switch fields[0] {
		case "name":
			s.Name = fields[1]
		case "instances":
			count, err = strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("experiment: load suite: bad instance count %q", fields[1])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("experiment: load suite: %w", err)
	}
	if count < 0 {
		return nil, fmt.Errorf("experiment: load suite: manifest missing instances line")
	}
	for i := 0; i < count; i++ {
		nf, err := os.Open(filepath.Join(dir, fmt.Sprintf("instance_%03d.nl", i)))
		if err != nil {
			return nil, fmt.Errorf("experiment: load suite: %w", err)
		}
		nl, err := netlist.Read(nf)
		nf.Close()
		if err != nil {
			return nil, fmt.Errorf("experiment: load suite instance %d: %w", i, err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("start_%03d.txt", i)))
		if err != nil {
			return nil, fmt.Errorf("experiment: load suite: %w", err)
		}
		fields := strings.Fields(string(raw))
		order := make([]int, 0, len(fields))
		for _, f := range fields {
			c, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("experiment: load suite start %d: bad cell %q", i, f)
			}
			order = append(order, c)
		}
		// Validate via the arrangement constructor.
		if _, err := linarr.New(nl, order); err != nil {
			return nil, fmt.Errorf("experiment: load suite start %d: %w", i, err)
		}
		s.Netlists = append(s.Netlists, nl)
		s.Starts = append(s.Starts, order)
	}
	return s, nil
}
