package experiment

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mcopt/internal/atomicio"
	"mcopt/internal/linarr"
	"mcopt/internal/netlist"
)

// MaxSuiteInstances bounds the manifest's instance count: a corrupt or
// hostile suite.txt must not make LoadSuite attempt millions of file opens.
const MaxSuiteInstances = 10000

// SaveSuite writes a suite to a directory: a manifest, one netlist file per
// instance, and the fixed starting orders. Together with the deterministic
// generators this allows archiving the exact instance set behind a table —
// the artifact the 1985 authors could not publish.
//
// Every file is written atomically (temp file, fsync, rename), so a crash
// mid-save leaves either the previous version or nothing — never a torn
// half-file that LoadSuite would then have to diagnose.
//
// Layout:
//
//	dir/suite.txt          "name <name>" and "instances <n>"
//	dir/instance_000.nl    text netlist format
//	dir/start_000.txt      space-separated cell order
func SaveSuite(dir string, s *Suite) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: save suite: %w", err)
	}
	var manifest strings.Builder
	fmt.Fprintf(&manifest, "name %s\n", s.Name)
	fmt.Fprintf(&manifest, "instances %d\n", s.Size())
	if err := atomicio.WriteFile(filepath.Join(dir, "suite.txt"), []byte(manifest.String()), 0o644); err != nil {
		return fmt.Errorf("experiment: save suite: %w", err)
	}
	for i, nl := range s.Netlists {
		f, err := atomicio.Create(filepath.Join(dir, fmt.Sprintf("instance_%03d.nl", i)))
		if err != nil {
			return fmt.Errorf("experiment: save suite: %w", err)
		}
		if err := netlist.Write(f, nl); err != nil {
			f.Discard()
			return fmt.Errorf("experiment: save suite instance %d: %w", i, err)
		}
		if err := f.Commit(); err != nil {
			return fmt.Errorf("experiment: save suite instance %d: %w", i, err)
		}
		var order strings.Builder
		for p, c := range s.Starts[i] {
			if p > 0 {
				order.WriteByte(' ')
			}
			order.WriteString(strconv.Itoa(c))
		}
		order.WriteByte('\n')
		if err := atomicio.WriteFile(filepath.Join(dir, fmt.Sprintf("start_%03d.txt", i)),
			[]byte(order.String()), 0o644); err != nil {
			return fmt.Errorf("experiment: save suite start %d: %w", i, err)
		}
	}
	return nil
}

// LoadSuite reads a suite saved by SaveSuite, validating every starting
// order against its netlist. The manifest is parsed strictly — unknown or
// malformed lines, duplicate directives, and out-of-range instance counts
// are errors naming the offending file, not silently skipped: a suite that
// backs a published table must load exactly or not at all.
func LoadSuite(dir string) (*Suite, error) {
	mpath := filepath.Join(dir, "suite.txt")
	mf, err := os.Open(mpath)
	if err != nil {
		return nil, fmt.Errorf("experiment: load suite: %w", err)
	}
	defer mf.Close()
	s := &Suite{}
	count, haveName, haveCount := -1, false, false
	sc := bufio.NewScanner(mf)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("experiment: load suite: %s:%d: malformed line %q (want \"directive value\")", mpath, line, text)
		}
		switch fields[0] {
		case "name":
			if haveName {
				return nil, fmt.Errorf("experiment: load suite: %s:%d: duplicate name directive", mpath, line)
			}
			haveName = true
			s.Name = fields[1]
		case "instances":
			if haveCount {
				return nil, fmt.Errorf("experiment: load suite: %s:%d: duplicate instances directive", mpath, line)
			}
			haveCount = true
			count, err = strconv.Atoi(fields[1])
			if err != nil || count < 0 {
				return nil, fmt.Errorf("experiment: load suite: %s:%d: bad instance count %q", mpath, line, fields[1])
			}
			if count > MaxSuiteInstances {
				return nil, fmt.Errorf("experiment: load suite: %s:%d: instance count %d exceeds limit %d", mpath, line, count, MaxSuiteInstances)
			}
		default:
			return nil, fmt.Errorf("experiment: load suite: %s:%d: unknown directive %q", mpath, line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("experiment: load suite: %s: %w", mpath, err)
	}
	if !haveCount {
		return nil, fmt.Errorf("experiment: load suite: %s: manifest missing instances line", mpath)
	}
	for i := 0; i < count; i++ {
		npath := filepath.Join(dir, fmt.Sprintf("instance_%03d.nl", i))
		nf, err := os.Open(npath)
		if err != nil {
			return nil, fmt.Errorf("experiment: load suite: %w", err)
		}
		nl, err := netlist.Read(nf)
		nf.Close()
		if err != nil {
			return nil, fmt.Errorf("experiment: load suite: %s: %w", npath, err)
		}
		spath := filepath.Join(dir, fmt.Sprintf("start_%03d.txt", i))
		raw, err := os.ReadFile(spath)
		if err != nil {
			return nil, fmt.Errorf("experiment: load suite: %w", err)
		}
		fields := strings.Fields(string(raw))
		order := make([]int, 0, len(fields))
		for _, f := range fields {
			c, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("experiment: load suite: %s: bad cell %q", spath, f)
			}
			if c < 0 || c >= nl.NumCells() {
				return nil, fmt.Errorf("experiment: load suite: %s: cell %d out of range [0,%d)", spath, c, nl.NumCells())
			}
			order = append(order, c)
		}
		// Validate via the arrangement constructor (permutation check).
		if _, err := linarr.New(nl, order); err != nil {
			return nil, fmt.Errorf("experiment: load suite: %s: %w", spath, err)
		}
		s.Netlists = append(s.Netlists, nl)
		s.Starts = append(s.Starts, order)
	}
	return s, nil
}
