package mcopt_test

import (
	"fmt"

	"mcopt"
)

// The README quickstart: anneal a paper-style GOLA instance with the
// parameter-free g = 1 rule.
func ExampleFigure1() {
	nl := mcopt.RandomGraph(mcopt.Stream("example-fig1", 1), 15, 150)
	arr := mcopt.RandomArrangement(nl, mcopt.Stream("example-fig1-start", 1))
	sol := mcopt.NewLinearSolution(arr, mcopt.PairwiseInterchange)

	res := mcopt.Figure1{G: mcopt.GOne()}.Run(sol, mcopt.NewBudget(2400), mcopt.Stream("example-fig1-run", 1))

	fmt.Println("improved:", res.BestCost < res.InitialCost)
	fmt.Println("moves spent:", res.Moves)
	// Output:
	// improved: true
	// moves spent: 2400
}

// The Figure-2 strategy descends to a local optimum before considering
// uphill jumps.
func ExampleFigure2() {
	nl := mcopt.RandomGraph(mcopt.Stream("example-fig2", 1), 12, 90)
	sol := mcopt.NewLinearSolution(
		mcopt.RandomArrangement(nl, mcopt.Stream("example-fig2-start", 1)),
		mcopt.PairwiseInterchange)

	res := mcopt.Figure2{G: mcopt.GCohoonSahni(nl.NumNets())}.Run(
		sol, mcopt.NewBudget(4000), mcopt.Stream("example-fig2-run", 1))

	fmt.Println("completed descents >= 1:", res.Descents >= 1)
	fmt.Println("best <= initial:", res.BestCost <= res.InitialCost)
	// Output:
	// completed descents >= 1: true
	// best <= initial: true
}

// Goto's constructive heuristic [GOTO77] orders a path graph perfectly.
func ExampleGotoOrder() {
	nl, err := mcopt.NewNetlist(5, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		panic(err)
	}
	order := mcopt.GotoOrder(nl)
	arr, err := mcopt.NewArrangement(nl, order)
	if err != nil {
		panic(err)
	}
	fmt.Println("density:", arr.Density())
	// Output:
	// density: 1
}

// The exact solver turns reductions into optimality gaps for instances of
// the paper's size.
func ExampleOptimalDensity() {
	nl := mcopt.RandomGraph(mcopt.Stream("example-exact", 1), 15, 150)
	opt, err := mcopt.OptimalDensity(nl)
	if err != nil {
		panic(err)
	}
	gotoArr, err := mcopt.NewArrangement(nl, mcopt.GotoOrder(nl))
	if err != nil {
		panic(err)
	}
	fmt.Println("Goto within 6 of optimal:", gotoArr.Density()-opt <= 6)
	// Output:
	// Goto within 6 of optimal: true
}

// Kernighan–Lin is the "proven heuristic" the paper faults [KIRK83] for not
// comparing annealing against.
func ExampleKernighanLin() {
	nl := mcopt.RandomHyper(mcopt.Stream("example-kl", 1), 16, 48, 2, 4)
	b := mcopt.RandomBipartition(nl, mcopt.Stream("example-kl-start", 1))
	before := b.CutSize()
	mcopt.KernighanLin(b, mcopt.NewBudget(100000))
	fmt.Println("cut reduced:", b.CutSize() < before)
	s0, s1 := b.SideSizes()
	fmt.Println("balanced:", s0 == s1)
	// Output:
	// cut reduced: true
	// balanced: true
}

// 2-opt with restarts is [LIN73] as [GOLD84] ran it against annealing.
func ExampleTwoOptRestarts() {
	inst := mcopt.RandomEuclidean(mcopt.Stream("example-2opt", 1), 40)
	random := mcopt.RandomTour(inst, mcopt.Stream("example-2opt-start", 1)).Length()
	best, starts := mcopt.TwoOptRestarts(inst, mcopt.NewBudget(20000), mcopt.Stream("example-2opt-run", 1))
	fmt.Println("restarts >= 1:", starts >= 1)
	fmt.Println("beats a random tour:", best.Length() < random)
	// Output:
	// restarts >= 1: true
	// beats a random tour: true
}

// Building a g class from the registry with an analytically derived default
// schedule.
func ExampleGByName() {
	b, ok := mcopt.GByName("Six Temperature Annealing")
	if !ok {
		panic("class not found")
	}
	g := b.Build(b.DefaultYs(mcopt.GScale{TypicalCost: 86, TypicalDelta: 2}))
	fmt.Println("levels:", g.K())
	fmt.Println("cooling:", g.Prob(6, 86, 88) < g.Prob(1, 86, 88))
	// Output:
	// levels: 6
	// cooling: true
}
