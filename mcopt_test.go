package mcopt_test

import (
	"math"
	"testing"

	"mcopt"
)

// TestFacadeGOLAEndToEnd drives the public API exactly as the README
// quickstart does and checks the run is productive and reproducible.
func TestFacadeGOLAEndToEnd(t *testing.T) {
	nl := mcopt.RandomGraph(mcopt.Stream("facade", 1), 15, 150)
	arr := mcopt.RandomArrangement(nl, mcopt.Stream("facade-start", 1))

	run := func() mcopt.Result {
		sol := mcopt.NewLinearSolution(arr.Clone(), mcopt.PairwiseInterchange)
		return mcopt.Figure1{G: mcopt.GOne()}.Run(sol, mcopt.NewBudget(2400), mcopt.Stream("facade-run", 1))
	}
	res := run()
	if res.Moves != 2400 {
		t.Fatalf("Moves = %d, want 2400", res.Moves)
	}
	if res.Reduction() < 5 {
		t.Fatalf("g = 1 reduced density by only %g on a random 15/150 instance", res.Reduction())
	}
	res2 := run()
	if res.BestCost != res2.BestCost || res.Accepted != res2.Accepted {
		t.Fatal("facade runs with identical seeds diverged")
	}
}

func TestFacadeGotoThenAnnealing(t *testing.T) {
	nl := mcopt.RandomHyper(mcopt.Stream("facade-nola", 2), 15, 150, 2, 8)
	gotoArr, err := mcopt.NewArrangement(nl, mcopt.GotoOrder(nl))
	if err != nil {
		t.Fatal(err)
	}
	sol := mcopt.NewLinearSolution(gotoArr, mcopt.PairwiseInterchange)
	g := mcopt.GSixTempAnnealing(mcopt.KirkpatrickSchedule())
	res := mcopt.Figure1{G: g}.Run(sol, mcopt.NewBudget(2400), mcopt.Stream("facade-nola-run", 2))
	if res.BestCost > res.InitialCost {
		t.Fatalf("best %g above initial %g", res.BestCost, res.InitialCost)
	}
	if res.LevelsVisited != 6 {
		t.Fatalf("six-temperature run visited %d levels", res.LevelsVisited)
	}
}

func TestFacadeFigure2WithSingleExchange(t *testing.T) {
	nl := mcopt.RandomGraph(mcopt.Stream("facade-f2", 3), 12, 80)
	sol := mcopt.NewLinearSolution(
		mcopt.RandomArrangement(nl, mcopt.Stream("facade-f2-start", 3)), mcopt.SingleExchange)
	res := mcopt.Figure2{G: mcopt.GCohoonSahni(nl.NumNets())}.Run(
		sol, mcopt.NewBudget(8000), mcopt.Stream("facade-f2-run", 3))
	if res.Descents < 1 {
		t.Fatal("no completed descents")
	}
	if res.Reduction() <= 0 {
		t.Fatal("Figure 2 made no progress")
	}
}

func TestFacadePartition(t *testing.T) {
	nl := mcopt.RandomHyper(mcopt.Stream("facade-part", 4), 32, 96, 2, 4)
	p := mcopt.RandomBipartition(nl, mcopt.Stream("facade-part-start", 4))
	mc := p.Clone()
	res := mcopt.Figure1{G: mcopt.GOne()}.Run(
		mcopt.NewPartitionSolution(mc), mcopt.NewBudget(10000), mcopt.Stream("facade-part-run", 4))

	kl := p.Clone()
	mcopt.KernighanLin(kl, mcopt.NewBudget(10000))

	if res.BestCost > float64(p.CutSize()) {
		t.Fatal("Monte Carlo worsened the cut")
	}
	if kl.CutSize() > p.CutSize() {
		t.Fatal("KL worsened the cut")
	}
}

func TestFacadeTSPBaselinesBeatRandom(t *testing.T) {
	inst := mcopt.RandomEuclidean(mcopt.Stream("facade-tsp", 5), 50)
	random := mcopt.RandomTour(inst, mcopt.Stream("facade-tsp-start", 5)).Length()

	nn := inst.TourLength(mcopt.NearestNeighbor(inst, 0))
	hull := inst.TourLength(mcopt.HullInsertion(inst))
	best, _ := mcopt.TwoOptRestarts(inst, mcopt.NewBudget(30000), mcopt.Stream("facade-tsp-lin", 5))

	for name, l := range map[string]float64{"NN": nn, "hull": hull, "2-opt": best.Length()} {
		if l >= random {
			t.Errorf("%s length %g not below random %g", name, l, random)
		}
		if math.IsNaN(l) || l <= 0 {
			t.Errorf("%s length %g invalid", name, l)
		}
	}
	if hull >= random*0.5 {
		t.Errorf("hull insertion (%g) should roughly halve a random tour (%g)", hull, random)
	}
}

func TestFacadeGClassRegistry(t *testing.T) {
	if got := len(mcopt.GClasses()); got != 20 {
		t.Fatalf("GClasses returned %d, want 20", got)
	}
	b, ok := mcopt.GByName("Cubic Diff")
	if !ok || b.ID != 15 {
		t.Fatalf("GByName(Cubic Diff) = %+v, %v", b, ok)
	}
	if _, ok := mcopt.GByID(21); ok {
		t.Fatal("GByID(21) matched")
	}
	scale := mcopt.GScale{TypicalCost: 80, TypicalDelta: 2}
	g := b.Build(b.DefaultYs(scale))
	if g.K() != 1 {
		t.Fatalf("built class K = %d", g.K())
	}
}

func TestFacadeSchedules(t *testing.T) {
	ys := mcopt.GeometricSchedule(8, 0.5, 4)
	want := []float64{8, 4, 2, 1}
	for i := range want {
		if ys[i] != want[i] {
			t.Fatalf("GeometricSchedule = %v", ys)
		}
	}
	u := mcopt.UniformSchedule(10, 5)
	if len(u) != 5 || u[0] != 10 || u[4] != 2 {
		t.Fatalf("UniformSchedule = %v", u)
	}
	k := mcopt.KirkpatrickSchedule()
	if len(k) != 6 || k[0] != 10 {
		t.Fatalf("KirkpatrickSchedule = %v", k)
	}
}

func TestFacadePlateauPolicies(t *testing.T) {
	// A netlist with no nets makes every move a plateau: PlateauReject must
	// accept nothing, PlateauAccept everything.
	nl, err := mcopt.NewNetlist(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for policy, want := range map[mcopt.PlateauPolicy]int64{
		mcopt.PlateauAccept: 100,
		mcopt.PlateauReject: 0,
	} {
		sol := mcopt.NewLinearSolution(
			mcopt.RandomArrangement(nl, mcopt.Stream("facade-plateau", 6)), mcopt.PairwiseInterchange)
		res := mcopt.Figure1{G: mcopt.GMetropolis(1), Plateau: policy}.Run(
			sol, mcopt.NewBudget(100), mcopt.Stream("facade-plateau-run", 6))
		if res.Accepted != want {
			t.Errorf("policy %v accepted %d, want %d", policy, res.Accepted, want)
		}
	}
}

func TestFacadeRejectionlessAndWhite(t *testing.T) {
	nl := mcopt.RandomGraph(mcopt.Stream("facade-rejless", 7), 12, 90)
	sol := mcopt.NewLinearSolution(
		mcopt.RandomArrangement(nl, mcopt.Stream("facade-rejless-start", 7)), mcopt.PairwiseInterchange)

	// [WHIT84]: derive the schedule from the instance itself.
	ys, err := mcopt.WhiteSchedule(sol, mcopt.Stream("facade-white", 7), 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ys) != 6 || ys[0] <= ys[5] {
		t.Fatalf("White schedule = %v", ys)
	}

	// [GREE84]: run the rejectionless engine under that schedule.
	res := mcopt.Rejectionless{G: mcopt.GAnnealing(ys)}.Run(sol, mcopt.NewBudget(20000), mcopt.Stream("facade-rejless-run", 7))
	if res.Reduction() <= 0 {
		t.Fatal("White-scheduled rejectionless run made no progress")
	}
	if len(res.Levels) != 6 {
		t.Fatalf("Levels = %d", len(res.Levels))
	}
}
